package analysis

import (
	"math"
	"testing"

	"iadm/internal/topology"
)

var p8 = topology.MustParams(8)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestICubePairReliability(t *testing.T) {
	if got := ICubePairReliability(p8, 0); got != 1 {
		t.Errorf("q=0: %v", got)
	}
	if got := ICubePairReliability(p8, 1); got != 0 {
		t.Errorf("q=1: %v", got)
	}
	want := 0.9 * 0.9 * 0.9
	if got := ICubePairReliability(p8, 0.1); !almost(got, want, 1e-12) {
		t.Errorf("q=0.1: %v, want %v", got, want)
	}
}

func TestPairReliabilityValidation(t *testing.T) {
	if _, err := PairReliability(p8, 9, 0, 0.1); err == nil {
		t.Error("accepted bad source")
	}
	if _, err := PairReliability(p8, 0, 0, -0.1); err == nil {
		t.Error("accepted bad probability")
	}
}

func TestPairReliabilityExtremes(t *testing.T) {
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			r0, err := PairReliability(p8, s, d, 0)
			if err != nil {
				t.Fatal(err)
			}
			if r0 != 1 {
				t.Errorf("q=0 s=%d d=%d: %v", s, d, r0)
			}
			r1, err := PairReliability(p8, s, d, 1)
			if err != nil {
				t.Fatal(err)
			}
			if r1 != 0 {
				t.Errorf("q=1 s=%d d=%d: %v", s, d, r1)
			}
		}
	}
}

func TestPairReliabilitySamePairIsSeriesSystem(t *testing.T) {
	// s == d has a unique all-straight path of n links: reliability must
	// be exactly (1-q)^n.
	for _, q := range []float64{0.05, 0.2, 0.5} {
		got, err := PairReliability(p8, 3, 3, q)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Pow(1-q, 3)
		if !almost(got, want, 1e-12) {
			t.Errorf("q=%v: %v, want %v", q, got, want)
		}
	}
}

func TestPairReliabilityDistanceN2Pair(t *testing.T) {
	// s=0, d=4 at N=8: the unique divergence is at stage 2 with TWO
	// parallel links: reliability = (1-q)^2 * (1 - q^2).
	for _, q := range []float64{0.1, 0.3} {
		got, err := PairReliability(p8, 0, 4, q)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Pow(1-q, 2) * (1 - q*q)
		if !almost(got, want, 1e-12) {
			t.Errorf("q=%v: %v, want %v", q, got, want)
		}
	}
}

func TestPairReliabilityBeatsICube(t *testing.T) {
	// For pairs with redundant paths the IADM reliability strictly exceeds
	// the single-path ICube reliability; for s=d they coincide.
	q := 0.1
	cube := ICubePairReliability(p8, q)
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			got, err := PairReliability(p8, s, d, q)
			if err != nil {
				t.Fatal(err)
			}
			if s == d {
				if !almost(got, cube, 1e-12) {
					t.Errorf("s=d=%d: %v, want %v", s, got, cube)
				}
			} else if got <= cube {
				t.Errorf("s=%d d=%d: IADM reliability %v not above ICube %v", s, d, got, cube)
			}
		}
	}
}

func TestPairReliabilityMatchesMonteCarlo(t *testing.T) {
	q := 0.15
	for _, pair := range [][2]int{{1, 0}, {0, 5}, {2, 7}} {
		exact, err := PairReliability(p8, pair[0], pair[1], q)
		if err != nil {
			t.Fatal(err)
		}
		mc := PairReliabilityMC(p8, pair[0], pair[1], q, 20000, 7)
		if !almost(exact, mc, 0.015) {
			t.Errorf("pair %v: exact %v vs MC %v", pair, exact, mc)
		}
	}
}

func TestPairReliabilityMonotoneInQ(t *testing.T) {
	prev := 1.1
	for _, q := range []float64{0, 0.1, 0.2, 0.4, 0.7, 1} {
		got, err := PairReliability(p8, 1, 0, q)
		if err != nil {
			t.Fatal(err)
		}
		if got > prev+1e-12 {
			t.Errorf("reliability not monotone at q=%v: %v > %v", q, got, prev)
		}
		prev = got
	}
}

func TestExpectedConnectivity(t *testing.T) {
	if got := ExpectedConnectivity(p8, 0, 5, 1); got != 1 {
		t.Errorf("q=0: %v", got)
	}
	got := ExpectedConnectivity(p8, 0.2, 50, 2)
	if got <= 0 || got >= 1 {
		t.Errorf("q=0.2: %v, want in (0,1)", got)
	}
}

func TestPathCountDistribution(t *testing.T) {
	dist, mean := PathCountDistribution(p8)
	// D=0 has 1 path; the N=8 distance counts are {1,4,3,5,2,5,3,4}.
	if dist[1] != 1 || dist[4] != 2 || dist[3] != 2 || dist[5] != 2 || dist[2] != 1 {
		t.Errorf("distribution = %v", dist)
	}
	want := (1.0 + 4 + 3 + 5 + 2 + 5 + 3 + 4) / 8
	if !almost(mean, want, 1e-12) {
		t.Errorf("mean = %v, want %v", mean, want)
	}
}

func TestExpectedConnectivityExactMatchesMC(t *testing.T) {
	for _, q := range []float64{0.02, 0.1} {
		exact, err := ExpectedConnectivityExact(p8, q)
		if err != nil {
			t.Fatal(err)
		}
		mc := ExpectedConnectivity(p8, q, 400, 5)
		if !almost(exact, mc, 0.02) {
			t.Errorf("q=%v: exact %v vs MC %v", q, exact, mc)
		}
		if exact <= 0 || exact >= 1 {
			t.Errorf("q=%v: exact %v out of (0,1)", q, exact)
		}
	}
	// q = 0 gives certainty.
	exact, err := ExpectedConnectivityExact(p8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exact != 1 {
		t.Errorf("q=0: %v", exact)
	}
}
