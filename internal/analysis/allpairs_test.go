package analysis

import (
	"math/rand"
	"testing"

	"iadm/internal/blockage"
	"iadm/internal/paths"
	"iadm/internal/topology"
)

// TestReroutablePairsSequentialAgreement: the fanned-out count equals a
// plain nested loop over paths.Exists.
func TestReroutablePairsSequentialAgreement(t *testing.T) {
	p := topology.MustParams(32)
	rng := rand.New(rand.NewSource(8100))
	for _, count := range []int{0, 8, 64, 200} {
		blk := blockage.NewSet(p)
		blk.RandomLinks(rng, count)
		want := 0
		for s := 0; s < 32; s++ {
			for d := 0; d < 32; d++ {
				if paths.Exists(p, s, d, blk) {
					want++
				}
			}
		}
		if got := ReroutablePairs(p, blk, 0); got != want {
			t.Fatalf("%d blockages: ReroutablePairs=%d, sequential=%d", count, got, want)
		}
	}
}

// TestReroutablePairsWorkerInvariance: identical counts for every worker
// count, including more workers than sources.
func TestReroutablePairsWorkerInvariance(t *testing.T) {
	p := topology.MustParams(64)
	blk := blockage.NewSet(p)
	blk.RandomLinks(rand.New(rand.NewSource(8200)), 100)
	base := ReroutablePairs(p, blk, 1)
	if base == 0 || base == 64*64 {
		t.Fatalf("degenerate baseline %d; pick a different blockage seed", base)
	}
	for _, workers := range []int{0, 2, 3, 5, 64, 200} {
		if got := ReroutablePairs(p, blk, workers); got != base {
			t.Fatalf("workers=%d: %d pairs, single-worker %d", workers, got, base)
		}
	}
}

// TestReroutablePairsCleanNetwork: with no blockages every pair routes.
func TestReroutablePairsCleanNetwork(t *testing.T) {
	p := topology.MustParams(16)
	if got := ReroutablePairs(p, blockage.NewSet(p), 0); got != 16*16 {
		t.Fatalf("clean network: %d pairs, want %d", got, 16*16)
	}
}

// TestExpectedConnectivityExactWorkerInvariance: the row-ordered reduction
// is bit-identical for every worker count (exact float equality, no
// tolerance).
func TestExpectedConnectivityExactWorkerInvariance(t *testing.T) {
	p := topology.MustParams(16)
	for _, q := range []float64{0, 0.05, 0.3, 1} {
		base, err := ExpectedConnectivityExactWorkers(p, q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if seq, err := ExpectedConnectivityExact(p, q); err != nil || seq != base {
			t.Fatalf("q=%v: ExpectedConnectivityExact=%v err=%v, workers=1 gives %v", q, seq, err, base)
		}
		for _, workers := range []int{0, 2, 3, 7, 16, 50} {
			got, err := ExpectedConnectivityExactWorkers(p, q, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got != base {
				t.Fatalf("q=%v workers=%d: %v != %v (must be bit-identical)", q, workers, got, base)
			}
		}
	}
}

// TestExpectedConnectivityExactWorkersValidation: q outside [0,1] errors.
func TestExpectedConnectivityExactWorkersValidation(t *testing.T) {
	p := topology.MustParams(4)
	for _, q := range []float64{-0.1, 1.1} {
		if _, err := ExpectedConnectivityExactWorkers(p, q, 0); err == nil {
			t.Fatalf("q=%v: expected error", q)
		}
	}
}

func BenchmarkReroutablePairs(b *testing.B) {
	p := topology.MustParams(256)
	blk := blockage.NewSet(p)
	blk.RandomLinks(rand.New(rand.NewSource(8300)), 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReroutablePairs(p, blk, 0)
	}
}

func BenchmarkExpectedConnectivityExactWorkers(b *testing.B) {
	p := topology.MustParams(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExpectedConnectivityExactWorkers(p, 0.05, 0); err != nil {
			b.Fatal(err)
		}
	}
}
