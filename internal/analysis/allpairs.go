package analysis

import (
	"fmt"

	"iadm/internal/blockage"
	"iadm/internal/fanout"
	"iadm/internal/paths"
	"iadm/internal/topology"
)

// This file holds the all-pairs sweeps. They fan the N sources out over
// a worker pool (internal/fanout) with one result slot per source and a
// sequential source-order reduction, so every function here returns
// bit-identical values for any worker count — the worker-invariance tests
// assert exact equality, not tolerance.

// ReroutablePairs counts the (s, d) pairs that remain routable under the
// given blockage set, sweeping all N^2 pairs with paths.Exists across
// workers (0 means GOMAXPROCS) worker goroutines.
func ReroutablePairs(p topology.Params, blk *blockage.Set, workers int) int {
	N := p.Size()
	rows := make([]int, N)
	fanout.Rows(N, workers, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			c := 0
			for d := 0; d < N; d++ {
				if paths.Exists(p, s, d, blk) {
					c++
				}
			}
			rows[s] = c
		}
	})
	total := 0
	for _, c := range rows {
		total += c
	}
	return total
}

// ExpectedConnectivityExactWorkers is ExpectedConnectivityExact fanned out
// over workers goroutines: each worker evaluates the pivot DP for a
// contiguous block of sources, accumulating one float64 per source row,
// and the rows are summed in source order afterwards.
func ExpectedConnectivityExactWorkers(p topology.Params, q float64, workers int) (float64, error) {
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("analysis: failure probability %v out of [0,1]", q)
	}
	N := p.Size()
	rows := make([]float64, N)
	errs := make([]error, N)
	fanout.Rows(N, workers, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			sum := 0.0
			for d := 0; d < N; d++ {
				r, err := PairReliability(p, s, d, q)
				if err != nil {
					errs[s] = err
					return
				}
				sum += r
			}
			rows[s] = sum
		}
	})
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	sum := 0.0
	for _, r := range rows {
		sum += r
	}
	return sum / float64(N*N), nil
}
