// Package analysis quantifies the redundancy the paper's schemes exploit:
// path-count distributions and the reliability of source/destination pairs
// under independent random link failures.
//
// Section 1 observes that "the IADM network can be regarded as a
// fault-tolerant ICube network". This package makes that comparison
// numeric: the ICube network offers exactly one path per pair (pair
// reliability (1-q)^n when each link fails independently with probability
// q), while the IADM network's redundant paths raise the reliability. The
// exact IADM pair reliability is computed by a dynamic program over the
// pivot structure of Lemma A2.1: at most two switches per stage can carry
// the message, so tracking the distribution over reachable pivot subsets
// costs O(n) with tiny constants.
package analysis

import (
	"fmt"
	"math"
	"math/rand"

	"iadm/internal/blockage"
	"iadm/internal/paths"
	"iadm/internal/topology"
)

// ICubePairReliability returns the probability that the unique ICube path
// between any pair survives when each link independently works with
// probability 1-q: (1-q)^n.
func ICubePairReliability(p topology.Params, q float64) float64 {
	return math.Pow(1-q, float64(p.Stages()))
}

// PairReliability returns the exact probability that at least one IADM
// routing path from s to d is fully intact when every link independently
// fails with probability q.
//
// The computation walks the stages keeping the probability distribution
// over the set of reachable pivots (Lemma A2.1: at most two per stage).
// Each reachable pivot contributes its participating output links (one
// straight link or the two oppositely signed nonstraight links, Theorem
// 3.2); enumerating the up-to-16 failure combinations of those at most
// four links yields the next distribution exactly.
func PairReliability(p topology.Params, s, d int, q float64) (float64, error) {
	if !p.ValidSwitch(s) || !p.ValidSwitch(d) {
		return 0, fmt.Errorf("analysis: invalid pair (%d, %d)", s, d)
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("analysis: failure probability %v out of [0,1]", q)
	}
	// The state is the distribution over reachable pivot subsets, indexed
	// by a bitmask over the stage's (<=2, Lemma A2.1) pivots — 4 slots.
	// A fixed array (not a map) keeps the accumulation order fixed, so
	// the result is bit-for-bit reproducible across runs; a map's
	// randomized iteration order perturbed the float sums by an ulp from
	// run to run, which the worker-invariance test caught as a flake.
	type state [4]float64
	pivots := paths.Pivots(p, s, d)

	var cur state
	cur[1] = 1.0 // bit 0 of the mask = first pivot of stage 0 (= s)
	for i := 0; i < p.Stages(); i++ {
		pv := pivots[i]
		nextPv := pivots[i+1]
		indexOfNext := func(sw int) int {
			for k, v := range nextPv {
				if v == sw {
					return k
				}
			}
			return -1
		}
		var next state
		for mask, prob := range cur {
			if prob == 0 {
				continue
			}
			if mask == 0 {
				next[0] += prob
				continue
			}
			// Collect the participating links of the reachable pivots.
			var links []topology.Link
			for k, sw := range pv {
				if mask&(1<<uint(k)) == 0 {
					continue
				}
				links = append(links, paths.NextLinks(p, i, sw, d)...)
			}
			// Enumerate failure combinations of those links.
			for combo := 0; combo < 1<<uint(len(links)); combo++ {
				comboProb := prob
				targets := 0
				for li, l := range links {
					if combo&(1<<uint(li)) != 0 {
						comboProb *= 1 - q // link works
						targets |= 1 << uint(indexOfNext(l.To(p)))
					} else {
						comboProb *= q // link failed
					}
				}
				if comboProb != 0 {
					next[targets] += comboProb
				}
			}
		}
		cur = next
	}
	// The message arrives iff the destination (the single pivot of the
	// output column) is reachable.
	alive := 0.0
	for mask, prob := range cur {
		if mask != 0 {
			alive += prob
		}
	}
	return alive, nil
}

// PairReliabilityMC estimates PairReliability by Monte Carlo sampling of
// link failures, as an independent cross-check of the exact DP.
func PairReliabilityMC(p topology.Params, s, d int, q float64, trials int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	m := topology.IADM{Params: p}
	ok := 0
	for t := 0; t < trials; t++ {
		blk := blockage.NewSet(p)
		m.Links(func(l topology.Link) bool {
			if rng.Float64() < q {
				blk.Block(l)
			}
			return true
		})
		if paths.Exists(p, s, d, blk) {
			ok++
		}
	}
	return float64(ok) / float64(trials)
}

// ExpectedConnectivity estimates, by Monte Carlo, the expected fraction of
// (s, d) pairs that remain routable when each link fails independently
// with probability q.
func ExpectedConnectivity(p topology.Params, q float64, trials int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	m := topology.IADM{Params: p}
	N := p.Size()
	total := 0
	for t := 0; t < trials; t++ {
		blk := blockage.NewSet(p)
		m.Links(func(l topology.Link) bool {
			if rng.Float64() < q {
				blk.Block(l)
			}
			return true
		})
		for s := 0; s < N; s++ {
			for d := 0; d < N; d++ {
				if paths.Exists(p, s, d, blk) {
					total++
				}
			}
		}
	}
	return float64(total) / float64(trials*N*N)
}

// PathCountDistribution returns, for each link-path count, how many of the
// N distances D share it, plus the mean redundancy over all distances.
func PathCountDistribution(p topology.Params) (dist map[int]int, mean float64) {
	dist = make(map[int]int)
	sum := 0
	for D := 0; D < p.Size(); D++ {
		links, _ := paths.CountPaths(p, 0, p.Mod(D))
		dist[links]++
		sum += links
	}
	return dist, float64(sum) / float64(p.Size())
}

// ExpectedConnectivityExact computes E[fraction of routable pairs] under
// i.i.d. link failure probability q exactly: by linearity of expectation
// it is the average of PairReliability over all N^2 pairs, each of which
// the pivot DP evaluates exactly. It is the single-worker case of
// ExpectedConnectivityExactWorkers (allpairs.go), whose row-ordered
// reduction makes the result identical for every worker count.
func ExpectedConnectivityExact(p topology.Params, q float64) (float64, error) {
	return ExpectedConnectivityExactWorkers(p, q, 1)
}
