package simulator

import (
	"testing"

	"iadm/internal/blockage"
	"iadm/internal/topology"
)

func baseConfig() Config {
	return Config{
		N:        8,
		Policy:   StaticC,
		Load:     0.3,
		QueueCap: 4,
		Cycles:   2000,
		Warmup:   200,
		Seed:     1,
		Traffic:  Uniform,
	}
}

func TestRunValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.N = 3 },
		func(c *Config) { c.Load = -0.1 },
		func(c *Config) { c.Load = 1.5 },
		func(c *Config) { c.QueueCap = 0 },
		func(c *Config) { c.Cycles = 0 },
		func(c *Config) { c.Traffic = PermutationTraffic; c.Perm = []int{0, 1} },
		func(c *Config) { c.Traffic = Hotspot; c.HotspotDest = 99 },
		// Perm entries out of [0, N) used to panic in the delivery sweep.
		func(c *Config) { c.Traffic = PermutationTraffic; c.Perm = []int{0, 1, 2, 3, 4, 5, 6, 8} },
		func(c *Config) { c.Traffic = PermutationTraffic; c.Perm = []int{0, 1, 2, 3, 4, 5, 6, -1} },
		// Repeated entries are not a permutation.
		func(c *Config) { c.Traffic = PermutationTraffic; c.Perm = []int{0, 0, 2, 3, 4, 5, 6, 7} },
		// HotspotFrac outside [0,1] was silently clamped by the Bernoulli
		// threshold.
		func(c *Config) { c.Traffic = Hotspot; c.HotspotFrac = -0.1 },
		func(c *Config) { c.Traffic = Hotspot; c.HotspotFrac = 1.5 },
		// Tornado at N=2 is pure self-traffic.
		func(c *Config) { c.N = 2; c.Traffic = Tornado },
	}
	for i, mutate := range bad {
		cfg := baseConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
		// The exported Validate must agree with Run's acceptance.
		if err := Validate(cfg); err == nil {
			t.Errorf("case %d: Validate accepted a config Run rejects", i)
		}
	}
	good := []func(*Config){
		func(c *Config) {}, // the base config itself
		func(c *Config) { c.Traffic = Hotspot; c.HotspotFrac = 0 },
		func(c *Config) { c.Traffic = Hotspot; c.HotspotFrac = 1 },
		// HotspotFrac is ignored (not validated) for non-hotspot traffic.
		func(c *Config) { c.Traffic = Uniform; c.HotspotFrac = 7 },
		func(c *Config) { c.N = 4; c.Traffic = Tornado },
	}
	for i, mutate := range good {
		cfg := baseConfig()
		mutate(&cfg)
		if err := Validate(cfg); err != nil {
			t.Errorf("good case %d: Validate rejected: %v", i, err)
		}
		if _, err := Run(cfg); err != nil {
			t.Errorf("good case %d: Run rejected: %v", i, err)
		}
	}
}

func TestConservation(t *testing.T) {
	// Every injected packet is delivered, dropped, or still in flight;
	// with no blockages nothing is dropped.
	for _, pol := range []Policy{StaticC, RandomState, AdaptiveSSDT} {
		cfg := baseConfig()
		cfg.Policy = pol
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if m.Dropped != 0 {
			t.Errorf("%v: dropped %d packets with no blockages", pol, m.Dropped)
		}
		if m.Delivered == 0 || m.Injected == 0 {
			t.Errorf("%v: nothing moved: %+v", pol, m)
		}
		inFlight := 3 * 8 * 3 * cfg.QueueCap // total buffer capacity bound
		if m.Delivered > m.Injected+inFlight {
			t.Errorf("%v: delivered %d > injected %d + capacity", pol, m.Delivered, m.Injected)
		}
		if m.Latency.N() != m.Delivered {
			t.Errorf("%v: latency samples %d != delivered %d", pol, m.Latency.N(), m.Delivered)
		}
		// Minimum latency is n-1 = 2 cycles (stage-0 buffer to delivery).
		if m.Delivered > 0 && m.Latency.Min() < 2 {
			t.Errorf("%v: impossible latency %v", pol, m.Latency.Min())
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := baseConfig()
	cfg.Policy = AdaptiveSSDT
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered || a.Injected != b.Injected || a.MaxQueue != b.MaxQueue ||
		a.Latency.Mean() != b.Latency.Mean() {
		t.Errorf("same seed produced different runs: %+v vs %+v", a, b)
	}
	cfg.Seed = 2
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Delivered == a.Delivered && c.Latency.Mean() == a.Latency.Mean() {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestPermutationTrafficDeliversToPerm(t *testing.T) {
	cfg := baseConfig()
	cfg.Traffic = PermutationTraffic
	cfg.Perm = []int{7, 6, 5, 4, 3, 2, 1, 0}
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The simulator panics internally if a packet is ever delivered to the
	// wrong output (Theorem 3.1 assertion), so reaching here with
	// deliveries is the check.
	if m.Delivered == 0 {
		t.Error("no deliveries under permutation traffic")
	}
}

func TestHotspotSkew(t *testing.T) {
	cfg := baseConfig()
	cfg.Traffic = Hotspot
	cfg.HotspotDest = 0
	cfg.HotspotFrac = 0.5
	cfg.Load = 0.2
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Delivered == 0 {
		t.Error("no deliveries under hotspot traffic")
	}
	// Hotspot congestion should produce higher latency than uniform at the
	// same load.
	uni := baseConfig()
	uni.Load = 0.2
	mu, err := Run(uni)
	if err != nil {
		t.Fatal(err)
	}
	if m.Latency.Mean() < mu.Latency.Mean() {
		t.Logf("note: hotspot latency %.2f < uniform %.2f (load too low to congest)",
			m.Latency.Mean(), mu.Latency.Mean())
	}
}

func TestAdaptiveBalancesBetterThanStaticUnderLoad(t *testing.T) {
	// The paper's load-balancing claim, measured: at high load the
	// adaptive-SSDT policy should not be worse than static-C on p99
	// latency (it spreads the nonstraight traffic across both buffers).
	run := func(pol Policy) Metrics {
		cfg := baseConfig()
		cfg.N = 16
		cfg.Policy = pol
		cfg.Load = 0.7
		cfg.Cycles = 4000
		cfg.Warmup = 500
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	st := run(StaticC)
	ad := run(AdaptiveSSDT)
	if ad.Throughput < st.Throughput*0.95 {
		t.Errorf("adaptive throughput %.4f much worse than static %.4f", ad.Throughput, st.Throughput)
	}
	if ad.Latency.Percentile(99) > st.Latency.Percentile(99)*1.25 {
		t.Errorf("adaptive p99 %.1f much worse than static %.1f",
			ad.Latency.Percentile(99), st.Latency.Percentile(99))
	}
	t.Logf("static:   thr=%.4f lat=%s maxQ=%d", st.Throughput, st.Latency.String(), st.MaxQueue)
	t.Logf("adaptive: thr=%.4f lat=%s maxQ=%d", ad.Throughput, ad.Latency.String(), ad.MaxQueue)
}

func TestBlockedNonstraightStillDelivers(t *testing.T) {
	// With one nonstraight link blocked, the policies route around it via
	// the spare and deliver without drops.
	p := topology.MustParams(8)
	blk := blockage.NewSet(p)
	blk.Block(topology.Link{Stage: 1, From: 2, Kind: topology.Minus})
	cfg := baseConfig()
	cfg.Blocked = blk
	cfg.Policy = AdaptiveSSDT
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dropped != 0 {
		t.Errorf("dropped %d packets despite spare links", m.Dropped)
	}
	if m.Delivered == 0 {
		t.Error("no deliveries")
	}
}

func TestBlockedStraightDrops(t *testing.T) {
	// A blocked straight link forces drops for packets that need it.
	p := topology.MustParams(8)
	blk := blockage.NewSet(p)
	for j := 0; j < 8; j++ {
		blk.Block(topology.Link{Stage: 1, From: j, Kind: topology.Straight})
	}
	cfg := baseConfig()
	cfg.Blocked = blk
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dropped == 0 {
		t.Error("no drops despite blocked straight links")
	}
}

func TestQueueCapRespected(t *testing.T) {
	cfg := baseConfig()
	cfg.QueueCap = 2
	cfg.Load = 0.9
	cfg.Policy = StaticC
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxQueue > 2 {
		t.Errorf("MaxQueue = %d exceeds capacity 2", m.MaxQueue)
	}
	if m.Refused == 0 {
		t.Error("expected refused injections at load 0.9 with tiny buffers")
	}
}

func TestPolicyAndTrafficStrings(t *testing.T) {
	if StaticC.String() != "static-C" || RandomState.String() != "random-state" || AdaptiveSSDT.String() != "adaptive-SSDT" {
		t.Error("Policy strings wrong")
	}
	if Uniform.String() != "uniform" || Hotspot.String() != "hotspot" || PermutationTraffic.String() != "permutation" {
		t.Error("TrafficKind strings wrong")
	}
	if Policy(9).String() == "" || TrafficKind(9).String() == "" {
		t.Error("unknown enum Strings empty")
	}
}

func TestSingleInputModelThroughputCeiling(t *testing.T) {
	// IADM single-input switches must not beat Gamma crossbars, and under
	// hotspot congestion they should deliver strictly less.
	run := func(m SwitchModel) Metrics {
		cfg := baseConfig()
		cfg.Switches = m
		cfg.Load = 0.8
		cfg.Traffic = Hotspot
		cfg.HotspotDest = 0
		cfg.HotspotFrac = 0.5
		cfg.Cycles = 3000
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cross := run(Crossbar)
	single := run(SingleInput)
	if single.Throughput > cross.Throughput*1.02 {
		t.Errorf("single-input throughput %.4f exceeds crossbar %.4f", single.Throughput, cross.Throughput)
	}
	t.Logf("crossbar thr=%.4f, single-input thr=%.4f", cross.Throughput, single.Throughput)
}

func TestSingleInputConservation(t *testing.T) {
	cfg := baseConfig()
	cfg.Switches = SingleInput
	cfg.Policy = AdaptiveSSDT
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dropped != 0 {
		t.Errorf("dropped %d with no blockages", m.Dropped)
	}
	if m.Delivered == 0 {
		t.Error("nothing delivered under single-input model")
	}
}

func TestTransientFaultsDropOrDeliver(t *testing.T) {
	cfg := baseConfig()
	cfg.FaultRate = 0.01
	cfg.RepairCycles = 20
	cfg.Policy = AdaptiveSSDT
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Delivered == 0 {
		t.Error("no deliveries under transient faults")
	}
	// Conservation still holds: drops only happen when a needed link set
	// is fully failed.
	t.Logf("transient faults: delivered=%d dropped=%d", m.Delivered, m.Dropped)
}

func TestTransientFaultsAdaptiveDropsLess(t *testing.T) {
	// The adaptive policy can sidestep a failed nonstraight link (the
	// other sign still reaches the destination, Theorem 3.2), so it should
	// not drop more than static-C routing under the same fault process.
	run := func(pol Policy) Metrics {
		cfg := baseConfig()
		cfg.N = 16
		cfg.Policy = pol
		cfg.FaultRate = 0.02
		cfg.RepairCycles = 30
		cfg.Cycles = 4000
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	st := run(StaticC)
	ad := run(AdaptiveSSDT)
	rate := func(m Metrics) float64 {
		tot := m.Delivered + m.Dropped
		if tot == 0 {
			return 0
		}
		return float64(m.Dropped) / float64(tot)
	}
	if rate(ad) > rate(st)*1.1 {
		t.Errorf("adaptive drop rate %.4f much worse than static %.4f", rate(ad), rate(st))
	}
	t.Logf("drop rates: static=%.4f adaptive=%.4f", rate(st), rate(ad))
}

func TestFaultRateValidation(t *testing.T) {
	cfg := baseConfig()
	cfg.FaultRate = 1.5
	if _, err := Run(cfg); err == nil {
		t.Error("accepted fault rate > 1")
	}
}

func TestSwitchModelString(t *testing.T) {
	if Crossbar.String() != "crossbar" || SingleInput.String() != "single-input" {
		t.Error("SwitchModel strings wrong")
	}
	if SwitchModel(9).String() == "" {
		t.Error("unknown SwitchModel empty")
	}
}

// TestLinkUtilizationMatchesAnalytic cross-validates the simulator against
// steady-state analysis: under uniform traffic at load L, straight links
// carry L/2 packets/cycle and nonstraight links L/4 on average; the
// adaptive and random policies spread the nonstraight load (small spread)
// while static-C concentrates it on one sign per switch (bimodal 0 / L/2,
// i.e. standard deviation comparable to the mean).
func TestLinkUtilizationMatchesAnalytic(t *testing.T) {
	const load = 0.4
	run := func(pol Policy) Metrics {
		cfg := baseConfig()
		cfg.N = 16
		cfg.Policy = pol
		cfg.Load = load
		cfg.Cycles = 8000
		cfg.Warmup = 1000
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	for _, pol := range []Policy{StaticC, RandomState, AdaptiveSSDT} {
		m := run(pol)
		if got := m.UtilStraight.Mean(); got < load/2*0.9 || got > load/2*1.1 {
			t.Errorf("%v: straight utilization %.4f, analytic %.4f", pol, got, load/2)
		}
		if got := m.UtilNonstraight.Mean(); got < load/4*0.9 || got > load/4*1.1 {
			t.Errorf("%v: nonstraight utilization %.4f, analytic %.4f", pol, got, load/4)
		}
	}
	st := run(StaticC)
	rd := run(RandomState)
	ad := run(AdaptiveSSDT)
	// Static-C: one nonstraight link per switch carries ~L/2, the other 0:
	// spread approximately equal to the mean. Random-state: both carry
	// ~L/4: small spread. Adaptive sits between them at moderate load —
	// its queue-length rule breaks ties toward the state-C link, so the
	// balancing only engages when buffers actually differ (exactly the
	// behaviour the paper describes: balance *when both links are busy*).
	if st.UtilNonstraight.StdDev() < st.UtilNonstraight.Mean()*0.8 {
		t.Errorf("static nonstraight spread %.4f not bimodal (mean %.4f)",
			st.UtilNonstraight.StdDev(), st.UtilNonstraight.Mean())
	}
	if rd.UtilNonstraight.StdDev() > st.UtilNonstraight.StdDev()*0.5 {
		t.Errorf("random-state nonstraight spread %.4f not clearly below static %.4f",
			rd.UtilNonstraight.StdDev(), st.UtilNonstraight.StdDev())
	}
	if ad.UtilNonstraight.StdDev() > st.UtilNonstraight.StdDev()*1.05 {
		t.Errorf("adaptive nonstraight spread %.4f above static %.4f",
			ad.UtilNonstraight.StdDev(), st.UtilNonstraight.StdDev())
	}
	t.Logf("nonstraight util sd: static=%.4f random=%.4f adaptive=%.4f (means all ~%.3f)",
		st.UtilNonstraight.StdDev(), rd.UtilNonstraight.StdDev(),
		ad.UtilNonstraight.StdDev(), st.UtilNonstraight.Mean())
}

func TestFixedPatternTraffic(t *testing.T) {
	for _, kind := range []TrafficKind{BitComplementTraffic, Tornado} {
		cfg := baseConfig()
		cfg.Traffic = kind
		m, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		// Delivery correctness is asserted inside the simulator
		// (wrong-output panics); just require progress.
		if m.Delivered == 0 {
			t.Errorf("%v: no deliveries", kind)
		}
	}
	if BitComplementTraffic.String() != "bit-complement" || Tornado.String() != "tornado" {
		t.Error("traffic names wrong")
	}
}

func TestBurstySourcesReduceOfferedLoad(t *testing.T) {
	plain := baseConfig()
	plain.Cycles = 6000
	bursty := plain
	bursty.Bursty = true
	bursty.BurstOn = 10
	bursty.BurstOff = 10
	mp, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := Run(bursty)
	if err != nil {
		t.Fatal(err)
	}
	// Long-run offered load halves (on-fraction 0.5): injected counts
	// should reflect that within generous tolerance.
	ratio := float64(mb.Injected) / float64(mp.Injected)
	if ratio < 0.35 || ratio > 0.65 {
		t.Errorf("bursty injection ratio %.3f, want ~0.5", ratio)
	}
	if mb.Delivered == 0 {
		t.Error("bursty run delivered nothing")
	}
}

// TestLivenessUnderSaturation: the stage pipeline is acyclic and the
// output column always drains, so even at load 1.0 with tiny buffers the
// simulator keeps delivering (no deadlock).
func TestLivenessUnderSaturation(t *testing.T) {
	cfg := baseConfig()
	cfg.Load = 1.0
	cfg.QueueCap = 1
	cfg.Policy = AdaptiveSSDT
	cfg.Switches = SingleInput
	cfg.Cycles = 3000
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Delivered < 1000 {
		t.Errorf("only %d deliveries at saturation (deadlock?)", m.Delivered)
	}
}
