// Package simulator is a synchronous, cycle-level packet-switching
// simulator for the IADM network, built to measure the load-balancing
// behaviour the paper claims for the SSDT scheme (Section 4): "when both
// nonstraight links are busy due to message traffic congestion, a switch
// can choose which nonstraight buffer to assign a message to ... based on
// the number of messages present in the buffers in order to evenly
// distribute the message load".
//
// Model: every output link of every switch has a FIFO buffer. Each cycle,
// every link forwards its head packet to a buffer of the next stage (chosen
// by the routing policy at the receiving switch) provided that buffer has
// space; sources inject fresh packets Bernoulli(load) per cycle. Packets
// carry plain n-bit destination tags; by Theorem 3.1 every buffer choice
// still delivers the packet, which is precisely the freedom the policies
// below exploit.
package simulator

import (
	"fmt"
	"math/rand"

	"iadm/internal/bitutil"
	"iadm/internal/blockage"
	"iadm/internal/stats"
	"iadm/internal/topology"
)

// Policy selects among the nonstraight buffers when a packet needs to
// complement the current stage's address bit.
type Policy int

const (
	// StaticC always uses the state-C link (the network behaves as the
	// embedded ICube network; no load balancing).
	StaticC Policy = iota
	// RandomState picks one of the two nonstraight buffers uniformly at
	// random per packet.
	RandomState
	// AdaptiveSSDT picks the nonstraight buffer currently holding fewer
	// packets (ties go to the state-C link) — the paper's SSDT
	// load-balancing rule.
	AdaptiveSSDT
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case StaticC:
		return "static-C"
	case RandomState:
		return "random-state"
	case AdaptiveSSDT:
		return "adaptive-SSDT"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// TrafficKind selects the destination distribution of injected packets.
type TrafficKind int

const (
	// Uniform sends each packet to an independently uniform destination.
	Uniform TrafficKind = iota
	// Hotspot sends a configured fraction of packets to one destination
	// and the rest uniformly.
	Hotspot
	// PermutationTraffic sends every packet from source s to Perm[s].
	PermutationTraffic
	// BitComplementTraffic sends from s to N-1-s, the classic worst-case
	// pattern that maximizes path lengths in data manipulator networks.
	BitComplementTraffic
	// Tornado sends from s to s + N/2 - 1 mod N, the adversarial pattern
	// for ring-like stride networks.
	Tornado
)

// String names the traffic kind.
func (t TrafficKind) String() string {
	switch t {
	case Uniform:
		return "uniform"
	case Hotspot:
		return "hotspot"
	case PermutationTraffic:
		return "permutation"
	case BitComplementTraffic:
		return "bit-complement"
	case Tornado:
		return "tornado"
	default:
		return fmt.Sprintf("TrafficKind(%d)", int(t))
	}
}

// SwitchModel selects the switch hardware semantics (Section 1): the
// Gamma network's 3x3 crossbars move a packet on every output link each
// cycle, while an IADM switch "can connect only one of its three inputs to
// one or more of its three outputs" — at most one packet traverses it per
// cycle.
type SwitchModel int

const (
	// Crossbar: up to three packets may pass through a switch per cycle
	// (Gamma semantics).
	Crossbar SwitchModel = iota
	// SingleInput: at most one packet passes through a switch per cycle
	// (IADM semantics).
	SingleInput
)

// String names the switch model.
func (m SwitchModel) String() string {
	switch m {
	case Crossbar:
		return "crossbar"
	case SingleInput:
		return "single-input"
	default:
		return fmt.Sprintf("SwitchModel(%d)", int(m))
	}
}

// Config parameterizes a simulation run.
type Config struct {
	N        int     // network size (power of two)
	Policy   Policy  // nonstraight buffer selection policy
	Load     float64 // injection probability per source per cycle, 0..1
	QueueCap int     // buffer capacity per link (packets)
	Cycles   int     // measured cycles
	Warmup   int     // cycles run before measurement starts
	Seed     int64   // PRNG seed (deterministic runs)

	Traffic     TrafficKind
	HotspotDest int     // Hotspot: the favoured destination
	HotspotFrac float64 // Hotspot: fraction of traffic to HotspotDest
	Perm        []int   // PermutationTraffic: the fixed destination map

	// Switches selects crossbar (Gamma) or single-input (IADM) switch
	// semantics; the zero value is Crossbar.
	Switches SwitchModel

	// Blocked, if non-nil, marks links that cannot carry packets; packets
	// with no usable buffer are dropped and counted.
	Blocked *blockage.Set

	// FaultRate, if positive, makes each link fail independently with this
	// probability per cycle; a failed link recovers after RepairCycles
	// cycles. Transiently failed links behave like blocked ones.
	FaultRate    float64
	RepairCycles int

	// Bursty, if true, modulates each source with an independent two-state
	// on/off Markov process (BurstOn/BurstOff are the expected sojourn
	// times in cycles; defaults 10/10 when zero). While "on" a source
	// injects with probability Load, while "off" it is silent, so the
	// long-run offered load is Load * on/(on+off).
	Bursty   bool
	BurstOn  int
	BurstOff int
}

// Metrics reports the outcome of a run.
type Metrics struct {
	Injected  int // packets injected during measurement
	Delivered int // packets delivered during measurement
	Dropped   int // packets dropped (blockage with no alternative)
	Refused   int // injections refused because the first buffer was full

	Latency    stats.Sample // cycles from injection to delivery
	MaxQueue   int          // largest buffer occupancy observed
	MeanQueue  float64      // time-average of per-link occupancy
	Throughput float64      // delivered per cycle per source

	// Per-link utilization (packets forwarded per measured cycle),
	// aggregated by link kind. Under uniform traffic at load L the
	// analytic steady-state values are L/2 for straight links and, for the
	// nonstraight links, mean L/4 with near-zero spread under the
	// load-balancing policies versus a 0-or-L/2 bimodal split under
	// static-C routing (each switch then always uses the same sign).
	UtilStraight    stats.Sample
	UtilNonstraight stats.Sample
}

type packet struct {
	dst  int
	born int
}

type sim struct {
	cfg    Config
	p      topology.Params
	rng    *rand.Rand
	queues [][]packet // indexed by link index
	m      Metrics

	// switchBusy marks stage-1..n switches that already passed a packet
	// this cycle (SingleInput model); indexed stage*N + switch with stage
	// counted from 1.
	switchBusy []bool

	// failUntil[link] is the first cycle at which a transiently failed
	// link works again (FaultRate model).
	failUntil []int
	now       int

	// forwards[link] counts packets forwarded out of the link's buffer
	// during measured cycles.
	forwards []int

	// burstOn[src] is the on/off state of each bursty source.
	burstOn []bool

	queueSamples int
	queueSum     int64
}

// Run executes the simulation and returns its metrics.
func Run(cfg Config) (Metrics, error) {
	p, err := topology.NewParams(cfg.N)
	if err != nil {
		return Metrics{}, err
	}
	if cfg.Load < 0 || cfg.Load > 1 {
		return Metrics{}, fmt.Errorf("simulator: load %v out of [0,1]", cfg.Load)
	}
	if cfg.QueueCap < 1 {
		return Metrics{}, fmt.Errorf("simulator: queue capacity %d < 1", cfg.QueueCap)
	}
	if cfg.Cycles < 1 {
		return Metrics{}, fmt.Errorf("simulator: cycles %d < 1", cfg.Cycles)
	}
	if cfg.Traffic == PermutationTraffic {
		if len(cfg.Perm) != cfg.N {
			return Metrics{}, fmt.Errorf("simulator: permutation has %d entries, want %d", len(cfg.Perm), cfg.N)
		}
	}
	if cfg.Traffic == Hotspot && (cfg.HotspotDest < 0 || cfg.HotspotDest >= cfg.N) {
		return Metrics{}, fmt.Errorf("simulator: hotspot destination %d out of range", cfg.HotspotDest)
	}
	if cfg.FaultRate < 0 || cfg.FaultRate > 1 {
		return Metrics{}, fmt.Errorf("simulator: fault rate %v out of [0,1]", cfg.FaultRate)
	}
	s := &sim{
		cfg:        cfg,
		p:          p,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		queues:     make([][]packet, 3*cfg.N*p.Stages()),
		switchBusy: make([]bool, (p.Stages()+1)*cfg.N),
		failUntil:  make([]int, 3*cfg.N*p.Stages()),
		forwards:   make([]int, 3*cfg.N*p.Stages()),
	}
	if cfg.Bursty {
		if s.cfg.BurstOn <= 0 {
			s.cfg.BurstOn = 10
		}
		if s.cfg.BurstOff <= 0 {
			s.cfg.BurstOff = 10
		}
		s.burstOn = make([]bool, cfg.N)
		for i := range s.burstOn {
			s.burstOn[i] = s.rng.Intn(2) == 0
		}
	}
	for cycle := 0; cycle < cfg.Warmup+cfg.Cycles; cycle++ {
		s.step(cycle, cycle >= cfg.Warmup)
	}
	if cfg.Cycles > 0 {
		s.m.Throughput = float64(s.m.Delivered) / float64(cfg.Cycles) / float64(cfg.N)
	}
	if s.queueSamples > 0 {
		s.m.MeanQueue = float64(s.queueSum) / float64(s.queueSamples)
	}
	for idx, count := range s.forwards {
		util := float64(count) / float64(cfg.Cycles)
		if topology.LinkFromIndex(p, idx).Kind.Nonstraight() {
			s.m.UtilNonstraight.Add(util)
		} else {
			s.m.UtilStraight.Add(util)
		}
	}
	return s.m, nil
}

// blocked reports whether a link is statically blocked or transiently
// failed right now.
func (s *sim) blocked(l topology.Link) bool {
	if s.cfg.Blocked != nil && s.cfg.Blocked.Blocked(l) {
		return true
	}
	return s.cfg.FaultRate > 0 && s.failUntil[l.Index(s.p)] > s.now
}

// busy reports (and busyMark sets) the SingleInput per-cycle usage of the
// switch at the given stage (1..n).
func (s *sim) busy(stage, sw int) bool {
	return s.cfg.Switches == SingleInput && s.switchBusy[stage*s.cfg.N+sw]
}

func (s *sim) busyMark(stage, sw int) {
	if s.cfg.Switches == SingleInput {
		s.switchBusy[stage*s.cfg.N+sw] = true
	}
}

// chooseQueue picks the output buffer of switch j at stage i for a packet
// to dst, honouring the policy and blockages. ok=false means the packet
// must be dropped.
func (s *sim) chooseQueue(i, j, dst int) (topology.Link, bool) {
	if bitutil.Bit(uint64(j), i) == bitutil.Bit(uint64(dst), i) {
		l := topology.Link{Stage: i, From: j, Kind: topology.Straight}
		return l, !s.blocked(l)
	}
	plus := topology.Link{Stage: i, From: j, Kind: topology.Plus}
	minus := topology.Link{Stage: i, From: j, Kind: topology.Minus}
	pOK, mOK := !s.blocked(plus), !s.blocked(minus)
	switch {
	case !pOK && !mOK:
		return topology.Link{}, false
	case pOK && !mOK:
		return plus, true
	case mOK && !pOK:
		return minus, true
	}
	switch s.cfg.Policy {
	case StaticC:
		// State C: even_i uses +2^i, odd_i uses -2^i.
		if core := bitutil.Bit(uint64(j), i); core == 0 {
			return plus, true
		}
		return minus, true
	case RandomState:
		if s.rng.Intn(2) == 0 {
			return plus, true
		}
		return minus, true
	default: // AdaptiveSSDT
		lp := len(s.queues[plus.Index(s.p)])
		lm := len(s.queues[minus.Index(s.p)])
		switch {
		case lp < lm:
			return plus, true
		case lm < lp:
			return minus, true
		default:
			// Tie: fall back to the state-C default.
			if bitutil.Bit(uint64(j), i) == 0 {
				return plus, true
			}
			return minus, true
		}
	}
}

// enqueue places a packet in the buffer of l if there is room.
func (s *sim) enqueue(l topology.Link, pk packet) bool {
	idx := l.Index(s.p)
	if len(s.queues[idx]) >= s.cfg.QueueCap {
		return false
	}
	s.queues[idx] = append(s.queues[idx], pk)
	if ln := len(s.queues[idx]); ln > s.m.MaxQueue {
		s.m.MaxQueue = ln
	}
	return true
}

// step advances the simulation one cycle. Stages are processed from the
// output side back to the input side so a packet advances at most one stage
// per cycle.
func (s *sim) step(cycle int, measured bool) {
	n := s.p.Stages()
	s.now = cycle
	// Reset per-cycle switch usage (SingleInput model).
	if s.cfg.Switches == SingleInput {
		for i := range s.switchBusy {
			s.switchBusy[i] = false
		}
	}
	// Inject and expire transient link failures.
	if s.cfg.FaultRate > 0 {
		for idx := range s.failUntil {
			if s.failUntil[idx] <= cycle && s.rng.Float64() < s.cfg.FaultRate {
				s.failUntil[idx] = cycle + s.cfg.RepairCycles
			}
		}
	}
	// Deliver from the last stage.
	for j := 0; j < s.cfg.N; j++ {
		for _, k := range [...]topology.LinkKind{topology.Minus, topology.Straight, topology.Plus} {
			l := topology.Link{Stage: n - 1, From: j, Kind: k}
			idx := l.Index(s.p)
			if len(s.queues[idx]) == 0 {
				continue
			}
			to := l.To(s.p)
			if s.busy(n, to) {
				continue // output switch already consumed a packet
			}
			pk := s.queues[idx][0]
			s.queues[idx] = s.queues[idx][1:]
			if to != pk.dst {
				panic(fmt.Sprintf("simulator: packet for %d delivered to %d via %v", pk.dst, to, l))
			}
			s.busyMark(n, to)
			if measured {
				s.m.Delivered++
				s.m.Latency.AddInt(cycle - pk.born)
				s.forwards[idx]++
			}
		}
	}
	// Advance intermediate stages, highest first.
	for i := n - 2; i >= 0; i-- {
		for j := 0; j < s.cfg.N; j++ {
			for _, k := range [...]topology.LinkKind{topology.Minus, topology.Straight, topology.Plus} {
				l := topology.Link{Stage: i, From: j, Kind: k}
				idx := l.Index(s.p)
				if len(s.queues[idx]) == 0 {
					continue
				}
				pk := s.queues[idx][0]
				at := l.To(s.p) // switch the packet is arriving at (stage i+1)
				if s.busy(i+1, at) {
					continue // IADM switch already passed its packet
				}
				out, ok := s.chooseQueue(i+1, at, pk.dst)
				if !ok {
					s.queues[idx] = s.queues[idx][1:]
					if measured {
						s.m.Dropped++
					}
					continue
				}
				if s.enqueue(out, pk) {
					s.queues[idx] = s.queues[idx][1:]
					s.busyMark(i+1, at)
					if measured {
						s.forwards[idx]++
					}
				}
				// Otherwise the packet stalls in place this cycle.
			}
		}
	}
	// Inject new packets.
	for src := 0; src < s.cfg.N; src++ {
		if s.cfg.Bursty {
			// Two-state Markov modulation with mean sojourn BurstOn/BurstOff.
			if s.burstOn[src] {
				if s.rng.Float64() < 1/float64(s.cfg.BurstOn) {
					s.burstOn[src] = false
				}
			} else if s.rng.Float64() < 1/float64(s.cfg.BurstOff) {
				s.burstOn[src] = true
			}
			if !s.burstOn[src] {
				continue
			}
		}
		if s.rng.Float64() >= s.cfg.Load {
			continue
		}
		dst := s.pickDestination(src)
		pk := packet{dst: dst, born: cycle}
		out, ok := s.chooseQueue(0, src, dst)
		if !ok {
			if measured {
				s.m.Dropped++
			}
			continue
		}
		if !s.enqueue(out, pk) {
			if measured {
				s.m.Refused++
			}
			continue
		}
		if measured {
			s.m.Injected++
		}
	}
	// Sample queue occupancy.
	if measured {
		for _, q := range s.queues {
			s.queueSum += int64(len(q))
			s.queueSamples++
		}
	}
}

// pickDestination draws a destination for a packet from src.
func (s *sim) pickDestination(src int) int {
	switch s.cfg.Traffic {
	case Hotspot:
		if s.rng.Float64() < s.cfg.HotspotFrac {
			return s.cfg.HotspotDest
		}
		return s.rng.Intn(s.cfg.N)
	case PermutationTraffic:
		return s.cfg.Perm[src]
	case BitComplementTraffic:
		return s.cfg.N - 1 - src
	case Tornado:
		return (src + s.cfg.N/2 - 1) % s.cfg.N
	default:
		return s.rng.Intn(s.cfg.N)
	}
}
