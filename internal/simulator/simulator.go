// Package simulator is a synchronous, cycle-level packet-switching
// simulator for the IADM network, built to measure the load-balancing
// behaviour the paper claims for the SSDT scheme (Section 4): "when both
// nonstraight links are busy due to message traffic congestion, a switch
// can choose which nonstraight buffer to assign a message to ... based on
// the number of messages present in the buffers in order to evenly
// distribute the message load".
//
// Model: every output link of every switch has a FIFO buffer. Each cycle,
// every link forwards its head packet to a buffer of the next stage (chosen
// by the routing policy at the receiving switch) provided that buffer has
// space; sources inject fresh packets Bernoulli(load) per cycle. Packets
// carry plain n-bit destination tags; by Theorem 3.1 every buffer choice
// still delivers the packet, which is precisely the freedom the policies
// below exploit.
//
// The hot path is allocation-free: per-link FIFOs live in one flat ring
// buffer (ringQueues), random draws are integer threshold compares against
// a counter-based generator (a splitmix64-style hash of seed, cycle,
// entity and draw purpose — see rng.go), transient faults are injected by
// geometric skip-sampling instead of one draw per link per cycle, and the
// latency distribution accumulates into a stats.Stream (streaming moments
// plus a fixed-width histogram) rather than one float64 per delivered
// packet. Use a Runner to amortize even the setup allocations across many
// seeds of one configuration, and RunMany/Sweep to fan independent runs
// out across a worker pool.
package simulator

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"

	"iadm/internal/blockage"
	"iadm/internal/stats"
	"iadm/internal/topology"
)

// Policy selects among the nonstraight buffers when a packet needs to
// complement the current stage's address bit.
type Policy int

const (
	// StaticC always uses the state-C link (the network behaves as the
	// embedded ICube network; no load balancing).
	StaticC Policy = iota
	// RandomState picks one of the two nonstraight buffers uniformly at
	// random per packet.
	RandomState
	// AdaptiveSSDT picks the nonstraight buffer currently holding fewer
	// packets (ties go to the state-C link) — the paper's SSDT
	// load-balancing rule.
	AdaptiveSSDT
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case StaticC:
		return "static-C"
	case RandomState:
		return "random-state"
	case AdaptiveSSDT:
		return "adaptive-SSDT"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// TrafficKind selects the destination distribution of injected packets.
type TrafficKind int

const (
	// Uniform sends each packet to an independently uniform destination.
	Uniform TrafficKind = iota
	// Hotspot sends a configured fraction of packets to one destination
	// and the rest uniformly.
	Hotspot
	// PermutationTraffic sends every packet from source s to Perm[s].
	PermutationTraffic
	// BitComplementTraffic sends from s to N-1-s, the classic worst-case
	// pattern that maximizes path lengths in data manipulator networks.
	BitComplementTraffic
	// Tornado sends from s to s + N/2 - 1 mod N, the adversarial pattern
	// for ring-like stride networks. Requires N >= 4: at N=2 the stride
	// is 0 and the pattern degenerates to self-traffic (rejected by
	// validation).
	Tornado
)

// String names the traffic kind.
func (t TrafficKind) String() string {
	switch t {
	case Uniform:
		return "uniform"
	case Hotspot:
		return "hotspot"
	case PermutationTraffic:
		return "permutation"
	case BitComplementTraffic:
		return "bit-complement"
	case Tornado:
		return "tornado"
	default:
		return fmt.Sprintf("TrafficKind(%d)", int(t))
	}
}

// SwitchModel selects the switch hardware semantics (Section 1): the
// Gamma network's 3x3 crossbars move a packet on every output link each
// cycle, while an IADM switch "can connect only one of its three inputs to
// one or more of its three outputs" — at most one packet traverses it per
// cycle.
type SwitchModel int

const (
	// Crossbar: up to three packets may pass through a switch per cycle
	// (Gamma semantics).
	Crossbar SwitchModel = iota
	// SingleInput: at most one packet passes through a switch per cycle
	// (IADM semantics).
	SingleInput
)

// String names the switch model.
func (m SwitchModel) String() string {
	switch m {
	case Crossbar:
		return "crossbar"
	case SingleInput:
		return "single-input"
	default:
		return fmt.Sprintf("SwitchModel(%d)", int(m))
	}
}

// Config parameterizes a simulation run.
type Config struct {
	N        int     // network size (power of two)
	Policy   Policy  // nonstraight buffer selection policy
	Load     float64 // injection probability per source per cycle, 0..1
	QueueCap int     // buffer capacity per link (packets)
	Cycles   int     // measured cycles
	Warmup   int     // cycles run before measurement starts (>= 0)
	Seed     int64   // PRNG seed (deterministic runs)

	Traffic     TrafficKind
	HotspotDest int     // Hotspot: the favoured destination
	HotspotFrac float64 // Hotspot: fraction of traffic to HotspotDest
	Perm        []int   // PermutationTraffic: the fixed destination map

	// Switches selects crossbar (Gamma) or single-input (IADM) switch
	// semantics; the zero value is Crossbar.
	Switches SwitchModel

	// Blocked, if non-nil, marks links that cannot carry packets; packets
	// with no usable buffer are dropped and counted. The set is snapshot
	// at run start.
	Blocked *blockage.Set

	// FaultRate, if positive, makes each link fail independently with this
	// probability per cycle; a failed link recovers after RepairCycles
	// cycles. Transiently failed links behave like blocked ones.
	FaultRate    float64
	RepairCycles int

	// Bursty, if true, modulates each source with an independent two-state
	// on/off Markov process (BurstOn/BurstOff are the expected sojourn
	// times in cycles; defaults 10/10 when zero). While "on" a source
	// injects with probability Load, while "off" it is silent, so the
	// long-run offered load is Load * on/(on+off).
	Bursty   bool
	BurstOn  int
	BurstOff int

	// IntraWorkers >= 2 steps each cycle on that many worker goroutines:
	// every stage's receiving switches (and the injection sources) are
	// partitioned into contiguous shards that own all state they touch,
	// with a barrier between stages. Because every random draw is a pure
	// function of (seed, cycle, entity, purpose) rather than a stream
	// position, the metrics are bit-identical for every IntraWorkers
	// value, including the sequential engine at 0 or 1 — the knob trades
	// cores for wall-clock on a single large-N run, nothing else. Values
	// above N are clamped to N. See also RunMany's nested-parallelism
	// budget (runs x shards <= GOMAXPROCS when workers are chosen
	// automatically).
	IntraWorkers int
}

// Metrics reports the outcome of a run.
type Metrics struct {
	Injected  int // packets injected during measurement
	Delivered int // packets delivered during measurement
	Dropped   int // packets dropped (blockage with no alternative)
	Refused   int // injections refused because the first buffer was full

	Latency    stats.Stream // cycles from injection to delivery
	MaxQueue   int          // largest buffer occupancy observed
	MeanQueue  float64      // time-average of per-link occupancy
	Throughput float64      // delivered per cycle per source

	// Per-link utilization (packets forwarded per measured cycle),
	// aggregated by link kind. Under uniform traffic at load L the
	// analytic steady-state values are L/2 for straight links and, for the
	// nonstraight links, mean L/4 with near-zero spread under the
	// load-balancing policies versus a 0-or-L/2 bimodal split under
	// static-C routing (each switch then always uses the same sign).
	UtilStraight    stats.Stream
	UtilNonstraight stats.Stream
}

// packet is the unit of traffic. int32 fields keep the flat ring buffer
// half the size of the naive int layout (N < 2^31 and cycle counts < 2^31
// are enforced by validation).
type packet struct {
	dst  int32
	born int32
}

// sim holds the preallocated state of one simulation configuration. All
// arrays are indexed by the dense link index (stage*N+from)*3 + kind, so a
// stage's links occupy one contiguous window and the per-stage sweeps are
// linear scans.
type sim struct {
	cfg Config
	p   topology.Params

	n int // stages
	N int // switches per stage
	L int // 3*N*n links

	rng ctrRNG
	q   ringQueues

	// toOf[link] is the switch the link leads to at the next stage.
	toOf []int32

	// in[((r-1)*N+sw)*3 + j] is the j-th incoming link (in ascending dense
	// index) of switch sw at stage r, for r = 1..n (r = n is the output
	// column). Built only for the sharded engine, whose shards iterate
	// receiving switches rather than sweeping the occupancy bitset.
	in []int32

	// intraP is the effective shard count (>= 2 selects the sharded
	// engine); shards and pool are its per-shard accumulators and worker
	// pool, and shard k owns switch columns [shardLo[k], shardLo[k+1]).
	intraP  int
	shards  []shardState
	shardLo []int32
	pool    *workerPool

	// staticBlocked is the snapshot of cfg.Blocked; blockable is true when
	// any link can ever be unusable (static blockage or transient faults),
	// letting the routing fast path skip blockage checks entirely.
	staticBlocked []bool
	hasStatic     bool
	blockable     bool

	// switchBusy marks stage-1..n switches that already passed a packet
	// this cycle (SingleInput model); indexed stage*N + switch with stage
	// counted from 1.
	switchBusy  []bool
	singleInput bool
	policy      Policy
	traffic     TrafficKind

	// failUntil[link] is the first cycle at which a transiently failed
	// link works again (FaultRate model).
	failUntil []int32
	faulty    bool

	// forwards[link] counts packets forwarded out of the link's buffer
	// during measured cycles.
	forwards []int32

	// burstOn[src] is the on/off state of each bursty source.
	burstOn []bool
	bursty  bool

	// Precomputed integer Bernoulli thresholds and the uniform destination
	// mask (N is a power of two, so a masked draw is exact).
	loadT, hotT, burstStopT, burstStartT uint64
	dstMask                              uint64

	// invLn1mF is 1/ln(1-FaultRate) for geometric skip-sampling (0 when
	// FaultRate >= 1: every trial hits).
	invLn1mF       float64
	nextFaultTrial int64

	nowCycle int

	// latHist accumulates delivery latencies as bare counter increments;
	// it is folded into the lat stream once at the end of the run, so the
	// per-delivery cost in the cycle loop is a single int32 increment.
	// Latencies at or beyond the last bucket are clamped into it.
	latHist []int32

	// occupied is the total number of queued packets, maintained
	// incrementally so per-cycle occupancy sampling is O(1), not O(links).
	occupied     int64
	queueSum     int64
	queueSamples int64
	maxQueue     int32

	lat, utilS, utilN stats.Stream

	// check snapshots invariantsEnabled at reset; ck holds the
	// conservation shadow counters the per-cycle checker balances
	// (see invariants.go).
	check bool
	ck    invariantCounters

	m Metrics
}

// normalized returns cfg with the documented defaults applied (bursty
// sojourn times), the form validate and the simulation operate on.
func normalized(cfg Config) Config {
	if cfg.Bursty {
		if cfg.BurstOn <= 0 {
			cfg.BurstOn = 10
		}
		if cfg.BurstOff <= 0 {
			cfg.BurstOff = 10
		}
	}
	return cfg
}

// Validate reports whether cfg would be accepted by Run, without
// allocating any simulation state. It is the config contract shared with
// the refsim differential oracle (internal/refsim), which must reject
// exactly the configs this package rejects.
func Validate(cfg Config) error {
	if _, err := topology.NewParams(cfg.N); err != nil {
		return err
	}
	cfg = normalized(cfg)
	return validate(&cfg)
}

// validate checks cfg against the documented ranges. cfg must already be
// normalized.
func validate(cfg *Config) error {
	if cfg.Load < 0 || cfg.Load > 1 {
		return fmt.Errorf("simulator: load %v out of [0,1]", cfg.Load)
	}
	if cfg.QueueCap < 1 {
		return fmt.Errorf("simulator: queue capacity %d < 1", cfg.QueueCap)
	}
	if cfg.Cycles < 1 {
		return fmt.Errorf("simulator: cycles %d < 1", cfg.Cycles)
	}
	if cfg.Warmup < 0 {
		return fmt.Errorf("simulator: warmup %d < 0 (a negative warmup would skew the measurement window)", cfg.Warmup)
	}
	if cfg.Warmup+cfg.Cycles >= math.MaxInt32 {
		return fmt.Errorf("simulator: warmup+cycles %d overflows the cycle counter", cfg.Warmup+cfg.Cycles)
	}
	if cfg.Traffic == PermutationTraffic {
		if len(cfg.Perm) != cfg.N {
			return fmt.Errorf("simulator: permutation has %d entries, want %d", len(cfg.Perm), cfg.N)
		}
		// Out-of-range entries used to slip through here and panic deep in
		// the delivery sweep; repeated entries silently skewed the offered
		// pattern. Require a genuine permutation of 0..N-1 up front.
		seen := make([]bool, cfg.N)
		for src, dst := range cfg.Perm {
			if dst < 0 || dst >= cfg.N {
				return fmt.Errorf("simulator: permutation maps source %d to %d, outside [0,%d)", src, dst, cfg.N)
			}
			if seen[dst] {
				return fmt.Errorf("simulator: permutation maps two sources to destination %d", dst)
			}
			seen[dst] = true
		}
	}
	if cfg.Traffic == Hotspot {
		if cfg.HotspotDest < 0 || cfg.HotspotDest >= cfg.N {
			return fmt.Errorf("simulator: hotspot destination %d out of range", cfg.HotspotDest)
		}
		if cfg.HotspotFrac < 0 || cfg.HotspotFrac > 1 {
			return fmt.Errorf("simulator: hotspot fraction %v out of [0,1]", cfg.HotspotFrac)
		}
	}
	if cfg.Traffic == Tornado && cfg.N < 4 {
		// At N=2 the pattern (src + N/2 - 1) mod N is the identity: every
		// packet targets its own source and the run measures straight-link
		// self-traffic, not an adversarial stride workload.
		return fmt.Errorf("simulator: tornado traffic degenerates to self-traffic at N=%d; need N >= 4", cfg.N)
	}
	if cfg.FaultRate < 0 || cfg.FaultRate > 1 {
		return fmt.Errorf("simulator: fault rate %v out of [0,1]", cfg.FaultRate)
	}
	if cfg.FaultRate > 0 && cfg.RepairCycles < 0 {
		return fmt.Errorf("simulator: repair cycles %d < 0 with fault rate %v", cfg.RepairCycles, cfg.FaultRate)
	}
	if cfg.IntraWorkers < 0 {
		return fmt.Errorf("simulator: intra workers %d < 0", cfg.IntraWorkers)
	}
	return nil
}

// effectiveIntra is the shard count a config actually steps with: at
// least 1, at most one shard per switch column.
func effectiveIntra(cfg Config) int {
	p := cfg.IntraWorkers
	if p < 1 {
		p = 1
	}
	if p > cfg.N {
		p = cfg.N
	}
	return p
}

// newSim validates cfg and allocates every buffer a run needs; reset must
// be called before run.
func newSim(cfg Config) (*sim, error) {
	p, err := topology.NewParams(cfg.N)
	if err != nil {
		return nil, err
	}
	cfg = normalized(cfg)
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	n, N := p.Stages(), cfg.N
	L := 3 * N * n
	s := &sim{
		cfg:         cfg,
		p:           p,
		n:           n,
		N:           N,
		L:           L,
		q:           newRingQueues(L, cfg.QueueCap),
		toOf:        make([]int32, L),
		switchBusy:  make([]bool, (n+1)*N),
		failUntil:   make([]int32, L),
		forwards:    make([]int32, L),
		singleInput: cfg.Switches == SingleInput,
		policy:      cfg.Policy,
		traffic:     cfg.Traffic,
		faulty:      cfg.FaultRate > 0,
		bursty:      cfg.Bursty,
		loadT:       bernoulliThreshold(cfg.Load),
		hotT:        bernoulliThreshold(cfg.HotspotFrac),
		dstMask:     uint64(N - 1),
	}
	for idx := 0; idx < L; idx++ {
		s.toOf[idx] = int32(topology.LinkFromIndex(p, idx).To(p))
	}
	if cfg.Blocked != nil {
		s.staticBlocked = make([]bool, L)
		for idx := 0; idx < L; idx++ {
			if cfg.Blocked.Blocked(topology.LinkFromIndex(p, idx)) {
				s.staticBlocked[idx] = true
				s.hasStatic = true
			}
		}
	}
	if s.bursty {
		s.burstOn = make([]bool, N)
		s.burstStopT = bernoulliThreshold(1 / float64(cfg.BurstOn))
		s.burstStartT = bernoulliThreshold(1 / float64(cfg.BurstOff))
	}
	if s.faulty && cfg.FaultRate < 1 {
		s.invLn1mF = 1 / math.Log(1-cfg.FaultRate)
	}
	s.blockable = s.hasStatic || s.faulty
	latBuckets := cfg.Warmup + cfg.Cycles + 1
	if latBuckets > 1<<16 {
		latBuckets = 1 << 16
	}
	s.latHist = make([]int32, latBuckets)
	s.lat = stats.NewStream(1, latBuckets)
	s.utilS = stats.NewStream(1.0/1024, 1025)
	s.utilN = stats.NewStream(1.0/1024, 1025)
	if s.intraP = effectiveIntra(cfg); s.intraP > 1 {
		s.buildSharding(latBuckets)
	}
	return s, nil
}

// reset rewinds the sim to cycle 0 with a fresh RNG seed, reusing every
// buffer.
func (s *sim) reset(seed int64) {
	s.rng = newCtrRNG(seed)
	s.q.reset()
	clear(s.switchBusy)
	clear(s.failUntil)
	clear(s.forwards)
	clear(s.latHist)
	s.occupied, s.queueSum, s.queueSamples = 0, 0, 0
	s.maxQueue = 0
	s.nowCycle = 0
	s.check = invariantsEnabled
	s.ck = invariantCounters{}
	s.m = Metrics{}
	s.lat.Reset()
	s.utilS.Reset()
	s.utilN.Reset()
	for k := range s.shards {
		s.shards[k].reset()
	}
	if s.bursty {
		for i := range s.burstOn {
			s.burstOn[i] = s.rng.bit(0, uint64(i), drawBurstInit)
		}
	}
	if s.faulty {
		s.nextFaultTrial = s.advanceFaultTrial(-1)
	}
}

// advanceFaultTrial walks the fault skip-chain one step: from trial
// position pos (flattened cycle*L + link; -1 before the first trial) to
// the next position whose Bernoulli(FaultRate) trial hits. Each skip draw
// is keyed by the position it starts from, so the whole chain — and
// therefore the fault pattern — is a pure function of the seed.
func (s *sim) advanceFaultTrial(pos int64) int64 {
	u := s.rng.word(uint64(pos+1), 0, drawFaultSkip)
	return pos + geometricSkipFromWord(u, s.invLn1mF)
}

// stepFaults injects and expires transient link failures for one cycle.
// Instead of one Bernoulli draw per link per cycle, the flattened
// (cycle, link) trial sequence is skip-sampled geometrically: expected
// cost is FaultRate*L per cycle rather than L. Trials landing on an
// already-failed link are discarded, which leaves every working link
// failing with exactly FaultRate per cycle. Both engines share this
// sequential walk (it is O(faults), not worth sharding), and the sharded
// engine runs it before the first barrier of the cycle.
func (s *sim) stepFaults(cycle int) {
	start := int64(cycle) * int64(s.L)
	end := start + int64(s.L)
	for s.nextFaultTrial < end {
		idx := int(s.nextFaultTrial - start)
		if int(s.failUntil[idx]) <= cycle {
			s.failUntil[idx] = int32(cycle + s.cfg.RepairCycles)
		}
		s.nextFaultTrial = s.advanceFaultTrial(s.nextFaultTrial)
	}
}

// run executes the configured cycles and finalizes metrics. The returned
// Metrics' stream fields share storage with the sim and are valid until
// the next reset.
func (s *sim) run() Metrics {
	if s.intraP > 1 {
		return s.runSharded()
	}
	total := s.cfg.Warmup + s.cfg.Cycles
	for cycle := 0; cycle < total; cycle++ {
		s.step(cycle, cycle >= s.cfg.Warmup)
	}
	return s.finish()
}

// finish derives the run-level metrics from the accumulated counters;
// shared by the sequential and sharded engines (the latter merges its
// per-shard accumulators first).
func (s *sim) finish() Metrics {
	s.m.Throughput = float64(s.m.Delivered) / float64(s.cfg.Cycles) / float64(s.N)
	if s.queueSamples > 0 {
		s.m.MeanQueue = float64(s.queueSum) / float64(s.queueSamples)
	}
	s.m.MaxQueue = int(s.maxQueue)
	for v, c := range s.latHist {
		s.lat.AddN(float64(v), int(c))
	}
	if s.check {
		s.checkLatencyMass()
	}
	for idx := 0; idx < s.L; idx++ {
		util := float64(s.forwards[idx]) / float64(s.cfg.Cycles)
		if idx%3 != 1 { // kinds are Minus(0), Straight(1), Plus(2)
			s.utilN.Add(util)
		} else {
			s.utilS.Add(util)
		}
	}
	s.m.Latency = s.lat
	s.m.UtilStraight = s.utilS
	s.m.UtilNonstraight = s.utilN
	return s.m
}

// Run executes the simulation and returns its metrics.
func Run(cfg Config) (Metrics, error) {
	s, err := newSim(cfg)
	if err != nil {
		return Metrics{}, err
	}
	defer s.closePool()
	s.reset(cfg.Seed)
	return s.run(), nil
}

// Runner executes repeated simulations of one configuration without
// reallocating any per-run state, so the steady-state cycle loop performs
// zero heap allocations. The Metrics returned by Run/RunSeed share their
// latency and utilization stream storage with the Runner and are
// invalidated by the next call; copy the numbers out (or use the one-shot
// Run function) if you need them to survive.
type Runner struct {
	s *sim
}

// NewRunner validates cfg and preallocates a reusable simulation.
func NewRunner(cfg Config) (*Runner, error) {
	s, err := newSim(cfg)
	if err != nil {
		return nil, err
	}
	r := &Runner{s: s}
	if s.pool != nil {
		runtime.SetFinalizer(r, func(r *Runner) { r.s.closePool() })
	}
	return r, nil
}

// Run executes one run with the configured seed.
func (r *Runner) Run() Metrics { return r.RunSeed(r.s.cfg.Seed) }

// RunSeed executes one run with the given seed, reusing all buffers.
func (r *Runner) RunSeed(seed int64) Metrics {
	r.s.reset(seed)
	return r.s.run()
}

// Close releases the Runner's intra-run worker goroutines (a no-op when
// IntraWorkers <= 1). The Runner must not be used afterwards. A forgotten
// Close is backstopped by a finalizer, but deterministic shutdown — e.g.
// before a goroutine-leak check in tests — needs the explicit call.
func (r *Runner) Close() {
	runtime.SetFinalizer(r, nil)
	r.s.closePool()
}

// linkBlocked reports whether a link is statically blocked or transiently
// failed right now.
func (s *sim) linkBlocked(idx int) bool {
	if s.hasStatic && s.staticBlocked[idx] {
		return true
	}
	return s.faulty && int(s.failUntil[idx]) > s.nowCycle
}

// chooseQueue picks the output buffer of switch sw at the given stage for
// a packet to dst, honouring the policy and blockages. ok=false means the
// packet must be dropped. The returned value is a dense link index. When
// no link can ever be blocked (the common case) the whole blockage ladder
// is skipped. (cycle, entity, purpose) are the draw coordinates of the
// RandomState coin: the incoming link index under drawRoute for transit
// packets, the source index under drawRouteInj at injection.
func (s *sim) chooseQueue(stage, sw, dst, cycle int, entity, purpose uint64) (int, bool) {
	base := (stage*s.N + sw) * 3
	if ((sw^dst)>>uint(stage))&1 == 0 {
		idx := base + 1 // straight
		if s.blockable && s.linkBlocked(idx) {
			return 0, false
		}
		return idx, true
	}
	minus, plus := base, base+2
	if s.blockable {
		mOK, pOK := !s.linkBlocked(minus), !s.linkBlocked(plus)
		switch {
		case !pOK && !mOK:
			return 0, false
		case pOK && !mOK:
			return plus, true
		case mOK && !pOK:
			return minus, true
		}
	}
	switch s.policy {
	case StaticC:
		// State C: even_i uses +2^i, odd_i uses -2^i.
		if (sw>>uint(stage))&1 == 0 {
			return plus, true
		}
		return minus, true
	case RandomState:
		if s.rng.bit(uint64(cycle), entity, purpose) {
			return plus, true
		}
		return minus, true
	default: // AdaptiveSSDT
		lp, lm := s.q.len(plus), s.q.len(minus)
		switch {
		case lp < lm:
			return plus, true
		case lm < lp:
			return minus, true
		default:
			// Tie: fall back to the state-C default.
			if (sw>>uint(stage))&1 == 0 {
				return plus, true
			}
			return minus, true
		}
	}
}

// step advances the simulation one cycle. Stages are processed from the
// output side back to the input side so a packet advances at most one stage
// per cycle. Link iteration within a stage is a linear scan: the dense
// index orders links by (stage, switch, kind) with kinds Minus, Straight,
// Plus, matching the seed implementation's sweep order exactly.
func (s *sim) step(cycle int, measured bool) {
	s.nowCycle = cycle
	// Reset per-cycle switch usage (SingleInput model).
	if s.singleInput {
		clear(s.switchBusy)
	}
	if s.faulty {
		s.stepFaults(cycle)
	}
	// The stage sweeps below iterate only the nonempty queues via the
	// occupancy bitset: set bits are consumed lowest-first, so the visit
	// order within a stage is still ascending link index (the seed sweep
	// order). Stage windows are not word-aligned, so the first and last
	// word of each range are masked; pushes always target the next stage
	// up, whose range was already processed this cycle, so mutating the
	// bitset mid-sweep never perturbs the snapshot word being drained.
	occ := s.q.occ
	// Deliver from the last stage.
	outBusyBase := s.n * s.N
	lo := (s.n - 1) * s.N * 3
	for w := lo >> 6; w < len(occ); w++ {
		word := occ[w]
		if w == lo>>6 {
			word &= ^uint64(0) << uint(lo&63)
		}
		for word != 0 {
			idx := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			to := int(s.toOf[idx])
			if s.singleInput && s.switchBusy[outBusyBase+to] {
				continue // output switch already consumed a packet
			}
			pk := s.q.pop(idx)
			s.occupied--
			if s.check {
				s.ck.delivered++
			}
			if int(pk.dst) != to {
				panic(fmt.Sprintf("simulator: packet for %d delivered to %d via %v",
					pk.dst, to, topology.LinkFromIndex(s.p, idx)))
			}
			if s.singleInput {
				s.switchBusy[outBusyBase+to] = true
			}
			if measured {
				s.m.Delivered++
				lat := cycle - int(pk.born)
				if lat >= len(s.latHist) {
					lat = len(s.latHist) - 1
				}
				s.latHist[lat]++
				s.forwards[idx]++
			}
		}
	}
	// Advance intermediate stages, highest first.
	for i := s.n - 2; i >= 0; i-- {
		busyBase := (i + 1) * s.N
		base := i * s.N * 3
		hi := base + 3*s.N
		for w := base >> 6; w <= (hi-1)>>6; w++ {
			word := occ[w]
			if w == base>>6 {
				word &= ^uint64(0) << uint(base&63)
			}
			if w == hi>>6 {
				word &= uint64(1)<<uint(hi&63) - 1
			}
			for word != 0 {
				idx := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				at := int(s.toOf[idx]) // switch the packet is arriving at (stage i+1)
				if s.singleInput && s.switchBusy[busyBase+at] {
					continue // IADM switch already passed its packet
				}
				pk := s.q.front(idx)
				out, ok := s.chooseQueue(i+1, at, int(pk.dst), cycle, uint64(idx), drawRoute)
				if !ok {
					s.q.pop(idx)
					s.occupied--
					if s.check {
						s.ck.dropped++
					}
					if measured {
						s.m.Dropped++
					}
					continue
				}
				if ln, pushed := s.q.push(out, pk); pushed {
					if ln > s.maxQueue {
						s.maxQueue = ln
					}
					s.q.pop(idx)
					if s.singleInput {
						s.switchBusy[busyBase+at] = true
					}
					if measured {
						s.forwards[idx]++
					}
				}
				// Otherwise the packet stalls in place this cycle.
			}
		}
	}
	// Inject new packets.
	for src := 0; src < s.N; src++ {
		c, e := uint64(cycle), uint64(src)
		if s.bursty {
			// Two-state Markov modulation with mean sojourn BurstOn/BurstOff.
			if s.burstOn[src] {
				if s.rng.hit(s.burstStopT, c, e, drawBurst) {
					s.burstOn[src] = false
				}
			} else if s.rng.hit(s.burstStartT, c, e, drawBurst) {
				s.burstOn[src] = true
			}
			if !s.burstOn[src] {
				continue
			}
		}
		if !s.rng.hit(s.loadT, c, e, drawLoad) {
			continue
		}
		var dst int
		if s.traffic == Uniform {
			dst = s.rng.intn(s.dstMask, c, e, drawDst)
		} else {
			dst = s.pickDestination(src, cycle)
		}
		out, ok := s.chooseQueue(0, src, dst, cycle, e, drawRouteInj)
		if !ok {
			if measured {
				s.m.Dropped++
			}
			continue
		}
		if ln, pushed := s.q.push(out, packet{dst: int32(dst), born: int32(cycle)}); pushed {
			if ln > s.maxQueue {
				s.maxQueue = ln
			}
			s.occupied++
			if s.check {
				s.ck.injected++
			}
			if measured {
				s.m.Injected++
			}
		} else if measured {
			s.m.Refused++
		}
	}
	// Sample queue occupancy (running total: O(1) per cycle).
	if measured {
		s.queueSum += s.occupied
		s.queueSamples += int64(s.L)
	}
	if s.check {
		s.checkInvariants(cycle)
	}
}

// pickDestination draws a destination for a packet from src (non-Uniform
// traffic kinds; Uniform is inlined at the call site).
func (s *sim) pickDestination(src, cycle int) int {
	c, e := uint64(cycle), uint64(src)
	switch s.traffic {
	case Hotspot:
		if s.rng.hit(s.hotT, c, e, drawHot) {
			return s.cfg.HotspotDest
		}
		return s.rng.intn(s.dstMask, c, e, drawDst)
	case PermutationTraffic:
		return s.cfg.Perm[src]
	case BitComplementTraffic:
		return s.N - 1 - src
	case Tornado:
		return (src + s.N/2 - 1) % s.N
	default:
		return s.rng.intn(s.dstMask, c, e, drawDst)
	}
}
