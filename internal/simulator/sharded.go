package simulator

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"iadm/internal/topology"
)

// The sharded engine steps one run's cycles on IntraWorkers goroutines
// while producing bit-identical metrics to the sequential engine, for any
// shard count. Two properties make that possible:
//
//  1. Every random draw is a pure function of (seed, cycle, entity,
//     purpose) — see rng.go — so a draw's value does not depend on which
//     worker evaluates it or when.
//
//  2. Ownership sharding: each phase partitions the 0..N-1 switch columns
//     into contiguous ranges, and a worker touches only state owned by
//     its columns. The deliver phase owns output ports, the per-stage
//     phases own the receiving switches of that stage's links, and the
//     inject phase owns sources. A link is popped only by the owner of
//     its receiving switch; pushes target only the owner's own output
//     queues; AdaptiveSSDT reads only the owner's queue lengths. In the
//     sequential sweep, operations on different receiving switches
//     commute (disjoint queues, counter increments), and the projection
//     of the ascending-link-index sweep onto any single receiving switch
//     is "its incoming links in ascending dense index" — exactly the
//     order the prebuilt `in` table stores. Barriers between phases keep
//     a stage's pushes from racing the next stage's pops.
//
// Per-shard accumulators are cumulative over the run and merged by exact
// integer sums/maxes after each cycle (mergeCycle is a pure recompute),
// so merged metrics are independent of both worker count and merge
// timing. The latency histogram is summed once at end of run. The
// occupancy bitset is not maintained in shard mode (its 64-link words
// straddle shard boundaries); the workers go through pushQuiet/popQuiet
// and iterate the `in` table instead.
//
// The pool's helper goroutines are persistent: they park on a channel
// between runs and synchronize phases through an atomic counter with a
// brief spin before yielding, so a steady-state Runner run still performs
// zero heap allocations.

// shardState is one shard's accumulator set. All counter fields are
// cumulative from cycle 0 of the current run; mergeCycle recomputes the
// sim-level totals from them, which keeps the merge order-independent
// and lets the simcheck build verify the totals against the shard sums.
// The pad keeps adjacent shards' hot counters off one cache line.
type shardState struct {
	injected, delivered, dropped, refused int64
	occDelta                              int64 // net queued-packet delta (injected - delivered - droppedInFlight)
	ckInjected, ckDelivered, ckDropped    int64 // conservation shadow counters (warmup included)
	maxQueue                              int32
	latHist                               []int32
	_                                     [64]byte
}

func (sh *shardState) reset() {
	sh.injected, sh.delivered, sh.dropped, sh.refused = 0, 0, 0, 0
	sh.occDelta = 0
	sh.ckInjected, sh.ckDelivered, sh.ckDropped = 0, 0, 0
	sh.maxQueue = 0
	clear(sh.latHist)
}

// Phase job kinds dispatched to the pool.
const (
	jobDeliver = iota // pop the last stage's links into the output ports
	jobStage          // advance one intermediate stage (pool.stage)
	jobInject         // per-source injection
	jobEndRun         // park the helpers until the next run
)

// workerPool runs shard phases on persistent helper goroutines. The
// coordinator (the goroutine inside runSharded) publishes a job in the
// plain fields, bumps the phase counter, executes shard 0 itself, and
// spins until every helper reports done; helpers spin on the phase
// counter, yielding after a short burst so the scheme degrades gracefully
// when shards outnumber cores. Between runs the helpers block on the
// start channel; Close closes it, ending them.
type workerPool struct {
	s       *sim
	helpers int
	start   chan struct{}

	phase atomic.Uint32
	done  atomic.Uint32

	// Job description; written by the coordinator before the phase bump,
	// read by helpers after observing it (the atomic ordering makes the
	// plain fields safe).
	kind     int
	stage    int
	cycle    int
	measured bool

	closeOnce sync.Once
}

func newWorkerPool(s *sim, shards int) *workerPool {
	p := &workerPool{s: s, helpers: shards - 1, start: make(chan struct{})}
	for k := 1; k < shards; k++ {
		go p.helper(k)
	}
	return p
}

// spinWait spins on cond with periodic yields. The yield matters beyond
// politeness: with more shards than cores a pure spin could starve the
// very workers it waits for.
func spinWait(cond func() bool) {
	for spins := 0; !cond(); {
		spins++
		if spins >= 64 {
			spins = 0
			runtime.Gosched()
		}
	}
}

func (p *workerPool) helper(k int) {
	for range p.start { // one token per run; exits when Close closes the channel
		last := uint32(0) // coordinator resets phase to 0 before unparking
		for {
			spinWait(func() bool { return p.phase.Load() != last })
			last = p.phase.Load()
			if p.kind == jobEndRun {
				p.done.Add(1)
				break
			}
			p.s.runShardPhase(k, p.kind, p.stage, p.cycle, p.measured)
			p.done.Add(1)
		}
	}
}

// unpark readies the helpers for a run. Helpers are parked (or not yet
// mid-run), so resetting the phase counter here cannot race them.
func (p *workerPool) unpark() {
	p.phase.Store(0)
	for i := 0; i < p.helpers; i++ {
		p.start <- struct{}{}
	}
}

// dispatch publishes one phase, contributes shard 0 on the coordinator
// goroutine, and waits for all helpers — the inter-phase barrier.
func (p *workerPool) dispatch(kind, stage, cycle int, measured bool) {
	p.done.Store(0)
	p.kind, p.stage, p.cycle, p.measured = kind, stage, cycle, measured
	p.phase.Add(1)
	if kind != jobEndRun {
		p.s.runShardPhase(0, kind, stage, cycle, measured)
	}
	target := uint32(p.helpers)
	spinWait(func() bool { return p.done.Load() == target })
}

// Close ends the helper goroutines. Must not be called mid-run.
func (p *workerPool) Close() {
	p.closeOnce.Do(func() { close(p.start) })
}

// closePool releases the intra-run workers, if any.
func (s *sim) closePool() {
	if s.pool != nil {
		s.pool.Close()
	}
}

// buildSharding prepares the sharded engine: the per-switch incoming-link
// table, the contiguous column partition, the per-shard accumulators, and
// the worker pool.
func (s *sim) buildSharding(latBuckets int) {
	s.in = make([]int32, s.n*s.N*3)
	fill := make([]int8, s.n*s.N)
	for idx := 0; idx < s.L; idx++ {
		stage := idx / (3 * s.N)
		row := stage*s.N + int(s.toOf[idx]) // receiving switch is at stage+1; rows are (r-1)*N+sw
		s.in[row*3+int(fill[row])] = int32(idx)
		fill[row]++
	}
	for row, c := range fill {
		if c != 3 {
			panic(fmt.Sprintf("simulator: switch row %d has %d incoming links, want 3", row, c))
		}
	}
	P := s.intraP
	s.shardLo = make([]int32, P+1)
	for k := 0; k <= P; k++ {
		s.shardLo[k] = int32(k * s.N / P)
	}
	s.shards = make([]shardState, P)
	for k := range s.shards {
		s.shards[k].latHist = make([]int32, latBuckets)
	}
	s.pool = newWorkerPool(s, P)
}

// runShardPhase executes one shard's slice of one phase.
func (s *sim) runShardPhase(k, kind, stage, cycle int, measured bool) {
	switch kind {
	case jobDeliver:
		s.shardDeliver(k, cycle, measured)
	case jobStage:
		s.shardStage(k, stage, cycle, measured)
	default:
		s.shardInject(k, cycle, measured)
	}
}

// runSharded is the sharded counterpart of the sequential cycle loop in
// run(): the same phases in the same order, with barriers between them
// and a deterministic merge after each cycle.
func (s *sim) runSharded() Metrics {
	total := s.cfg.Warmup + s.cfg.Cycles
	s.pool.unpark()
	for cycle := 0; cycle < total; cycle++ {
		measured := cycle >= s.cfg.Warmup
		s.nowCycle = cycle
		if s.faulty {
			s.stepFaults(cycle) // sequential: O(faults), read-only during phases
		}
		s.pool.dispatch(jobDeliver, 0, cycle, measured)
		for i := s.n - 2; i >= 0; i-- {
			s.pool.dispatch(jobStage, i, cycle, measured)
		}
		s.pool.dispatch(jobInject, 0, cycle, measured)
		s.mergeCycle()
		if measured {
			s.queueSum += s.occupied
			s.queueSamples += int64(s.L)
		}
		if s.check {
			s.checkInvariants(cycle)
		}
	}
	s.pool.dispatch(jobEndRun, 0, 0, false)
	for k := range s.shards {
		for v, c := range s.shards[k].latHist {
			s.latHist[v] += c
		}
	}
	if s.check {
		s.checkShardMerge()
	}
	return s.finish()
}

// mergeCycle recomputes the sim-level totals from the cumulative
// per-shard accumulators: exact integer sums and maxes, so the result is
// identical for every shard count and unaffected by when the merge runs.
func (s *sim) mergeCycle() {
	var inj, del, drop, ref, occ int64
	var ckI, ckD, ckX int64
	var mq int32
	for k := range s.shards {
		sh := &s.shards[k]
		inj += sh.injected
		del += sh.delivered
		drop += sh.dropped
		ref += sh.refused
		occ += sh.occDelta
		ckI += sh.ckInjected
		ckD += sh.ckDelivered
		ckX += sh.ckDropped
		if sh.maxQueue > mq {
			mq = sh.maxQueue
		}
	}
	s.m.Injected, s.m.Delivered, s.m.Dropped, s.m.Refused = int(inj), int(del), int(drop), int(ref)
	s.occupied = occ
	s.ck = invariantCounters{injected: ckI, delivered: ckD, dropped: ckX}
	s.maxQueue = mq
}

// shardDeliver pops the last stage's links into the output ports owned by
// shard k (SingleInput: the first nonempty incoming link wins the cycle).
func (s *sim) shardDeliver(k, cycle int, measured bool) {
	sh := &s.shards[k]
	rowBase := (s.n - 1) * s.N
	for to := int(s.shardLo[k]); to < int(s.shardLo[k+1]); to++ {
		inBase := (rowBase + to) * 3
		passed := false
		for j := 0; j < 3; j++ {
			idx := int(s.in[inBase+j])
			if s.q.len(idx) == 0 {
				continue
			}
			if s.singleInput && passed {
				continue
			}
			pk := s.q.popQuiet(idx)
			sh.occDelta--
			if s.check {
				sh.ckDelivered++
			}
			if int(pk.dst) != to {
				panic(fmt.Sprintf("simulator: packet for %d delivered to %d via %v",
					pk.dst, to, topology.LinkFromIndex(s.p, idx)))
			}
			passed = true
			if measured {
				sh.delivered++
				lat := cycle - int(pk.born)
				if lat >= len(sh.latHist) {
					lat = len(sh.latHist) - 1
				}
				sh.latHist[lat]++
				s.forwards[idx]++
			}
		}
	}
}

// shardStage advances stage i's links into the stage-i+1 switches owned
// by shard k.
func (s *sim) shardStage(k, i, cycle int, measured bool) {
	sh := &s.shards[k]
	rowBase := i * s.N
	for at := int(s.shardLo[k]); at < int(s.shardLo[k+1]); at++ {
		inBase := (rowBase + at) * 3
		passed := false
		for j := 0; j < 3; j++ {
			idx := int(s.in[inBase+j])
			if s.q.len(idx) == 0 {
				continue
			}
			if s.singleInput && passed {
				continue
			}
			pk := s.q.front(idx)
			out, ok := s.chooseQueue(i+1, at, int(pk.dst), cycle, uint64(idx), drawRoute)
			if !ok {
				s.q.popQuiet(idx)
				sh.occDelta--
				if s.check {
					sh.ckDropped++
				}
				if measured {
					sh.dropped++
				}
				continue
			}
			if ln, pushed := s.q.pushQuiet(out, pk); pushed {
				if ln > sh.maxQueue {
					sh.maxQueue = ln
				}
				s.q.popQuiet(idx)
				passed = true
				if measured {
					s.forwards[idx]++
				}
			}
			// Otherwise the packet stalls in place this cycle.
		}
	}
}

// shardInject runs the injection loop for the sources owned by shard k.
func (s *sim) shardInject(k, cycle int, measured bool) {
	sh := &s.shards[k]
	for src := int(s.shardLo[k]); src < int(s.shardLo[k+1]); src++ {
		c, e := uint64(cycle), uint64(src)
		if s.bursty {
			if s.burstOn[src] {
				if s.rng.hit(s.burstStopT, c, e, drawBurst) {
					s.burstOn[src] = false
				}
			} else if s.rng.hit(s.burstStartT, c, e, drawBurst) {
				s.burstOn[src] = true
			}
			if !s.burstOn[src] {
				continue
			}
		}
		if !s.rng.hit(s.loadT, c, e, drawLoad) {
			continue
		}
		var dst int
		if s.traffic == Uniform {
			dst = s.rng.intn(s.dstMask, c, e, drawDst)
		} else {
			dst = s.pickDestination(src, cycle)
		}
		out, ok := s.chooseQueue(0, src, dst, cycle, e, drawRouteInj)
		if !ok {
			if measured {
				sh.dropped++
			}
			continue
		}
		if ln, pushed := s.q.pushQuiet(out, packet{dst: int32(dst), born: int32(cycle)}); pushed {
			if ln > sh.maxQueue {
				sh.maxQueue = ln
			}
			sh.occDelta++
			if s.check {
				sh.ckInjected++
			}
			if measured {
				sh.injected++
			}
		} else if measured {
			sh.refused++
		}
	}
}
