package simulator

import (
	"fmt"
	"testing"
)

func BenchmarkCyclesPerSecond(b *testing.B) {
	for _, N := range []int{8, 64} {
		for _, pol := range []Policy{StaticC, AdaptiveSSDT} {
			b.Run(fmt.Sprintf("N=%d/%s", N, pol), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_, err := Run(Config{
						N: N, Policy: pol, Load: 0.5, QueueCap: 4,
						Cycles: 100, Warmup: 10, Seed: int64(i), Traffic: Uniform,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkHotspotRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Run(Config{
			N: 16, Policy: AdaptiveSSDT, Load: 0.6, QueueCap: 4,
			Cycles: 200, Warmup: 20, Seed: int64(i),
			Traffic: Hotspot, HotspotDest: 0, HotspotFrac: 0.3,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
