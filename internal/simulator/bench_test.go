package simulator

import (
	"fmt"
	"testing"
)

// BenchmarkCyclesPerSecond is the tracked simulator benchmark: the
// steady-state cost of the cycle loop, with per-run setup amortized by a
// Runner (the loop itself performs zero heap allocations). Every policy
// has a row so a regression in any selection rule shows up.
func BenchmarkCyclesPerSecond(b *testing.B) {
	for _, N := range []int{8, 64} {
		for _, pol := range []Policy{StaticC, RandomState, AdaptiveSSDT} {
			b.Run(fmt.Sprintf("N=%d/%s", N, pol), func(b *testing.B) {
				r, err := NewRunner(Config{
					N: N, Policy: pol, Load: 0.5, QueueCap: 4,
					Cycles: 100, Warmup: 10, Traffic: Uniform,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r.RunSeed(int64(i))
				}
			})
		}
	}
}

// BenchmarkRunOneShot measures the convenience Run path including its
// per-run setup allocations (the shape the seed implementation's
// BenchmarkCyclesPerSecond reported).
func BenchmarkRunOneShot(b *testing.B) {
	for _, N := range []int{8, 64} {
		b.Run(fmt.Sprintf("N=%d", N), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := Run(Config{
					N: N, Policy: AdaptiveSSDT, Load: 0.5, QueueCap: 4,
					Cycles: 100, Warmup: 10, Seed: int64(i), Traffic: Uniform,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunMany measures the parallel fan-out over a batch of
// independent runs at several worker counts (workers=1 is the serial
// baseline; speedup tops out at the machine's core count).
func BenchmarkRunMany(b *testing.B) {
	const batch = 16
	cfgs := make([]Config, batch)
	for i := range cfgs {
		cfgs[i] = Config{
			N: 16, Policy: AdaptiveSSDT, Load: 0.5, QueueCap: 4,
			Cycles: 200, Warmup: 20, Seed: int64(i), Traffic: Uniform,
		}
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunManyWorkers(cfgs, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkHotspotRun(b *testing.B) {
	r, err := NewRunner(Config{
		N: 16, Policy: AdaptiveSSDT, Load: 0.6, QueueCap: 4,
		Cycles: 200, Warmup: 20,
		Traffic: Hotspot, HotspotDest: 0, HotspotFrac: 0.3,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RunSeed(int64(i))
	}
}

// BenchmarkLargeN is the tracked intra-run scaling benchmark: one large-N
// run stepped with 1..8 shards. workers=1 runs the sequential engine (the
// no-overhead baseline); higher counts measure the sharded stepper, whose
// results are bit-identical to the baseline. Cycle counts are kept small
// so the full N x workers grid stays tractable; ns/op comparisons are
// only meaningful within one N. Steady state must stay at 0 allocs/op for
// every worker count (the pool parks persistent goroutines between runs).
func BenchmarkLargeN(b *testing.B) {
	for _, N := range []int{256, 1024, 4096} {
		cycles := 50
		if N >= 4096 {
			cycles = 40
		}
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("N=%d/workers=%d", N, workers), func(b *testing.B) {
				r, err := NewRunner(Config{
					N: N, Policy: AdaptiveSSDT, Load: 0.6, QueueCap: 4,
					Cycles: cycles, Warmup: 5, Traffic: Uniform,
					IntraWorkers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer r.Close()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r.RunSeed(int64(i))
				}
			})
		}
	}
}
