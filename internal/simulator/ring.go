package simulator

// ringQueues is the per-link FIFO storage of the simulator: one flat
// preallocated buffer holding every link's queue as a fixed-stride ring.
// The seed implementation kept a [][]packet and popped with
// `q = append(q, pk)` / `q = q[1:]`, which allocates on growth, pins
// popped packets behind the live slice window, and re-allocates the whole
// window every QueueCap pops; a ring in a flat array does none of that,
// and push/pop are branch-plus-store operations with no pointer chasing.
//
// occ mirrors the queues as a bitset (bit i set iff queue i is nonempty),
// so the per-cycle stage sweeps visit only occupied links instead of
// scanning all 3*N*n of them.
type ringQueues struct {
	buf  []packet // len = links * cap; queue q occupies buf[q*cap : (q+1)*cap]
	head []int32  // per-queue index of the front element within its window
	size []int32  // per-queue occupancy
	occ  []uint64 // nonempty-queue bitset, one bit per queue
	cap  int32    // stride (QueueCap)
}

func newRingQueues(links, capacity int) ringQueues {
	return ringQueues{
		buf:  make([]packet, links*capacity),
		head: make([]int32, links),
		size: make([]int32, links),
		occ:  make([]uint64, (links+63)/64),
		cap:  int32(capacity),
	}
}

// reset empties every queue without touching the packet storage.
func (q *ringQueues) reset() {
	for i := range q.head {
		q.head[i] = 0
		q.size[i] = 0
	}
	for i := range q.occ {
		q.occ[i] = 0
	}
}

// len returns the occupancy of queue i.
func (q *ringQueues) len(i int) int32 { return q.size[i] }

// push appends pk to queue i, reporting false (and storing nothing) when
// the queue is at capacity. On success it returns the new occupancy.
func (q *ringQueues) push(i int, pk packet) (int32, bool) {
	n := q.size[i]
	if n >= q.cap {
		return n, false
	}
	pos := q.head[i] + n
	if pos >= q.cap {
		pos -= q.cap
	}
	q.buf[int32(i)*q.cap+pos] = pk
	q.size[i] = n + 1
	if n == 0 {
		q.occ[i>>6] |= 1 << uint(i&63)
	}
	return n + 1, true
}

// front returns the head packet of queue i; the queue must be non-empty.
func (q *ringQueues) front(i int) packet {
	return q.buf[int32(i)*q.cap+q.head[i]]
}

// pop removes and returns the head packet of queue i; the queue must be
// non-empty.
func (q *ringQueues) pop(i int) packet {
	h := q.head[i]
	pk := q.buf[int32(i)*q.cap+h]
	h++
	if h == q.cap {
		h = 0
	}
	q.head[i] = h
	n := q.size[i] - 1
	q.size[i] = n
	if n == 0 {
		q.occ[i>>6] &^= 1 << uint(i&63)
	}
	return pk
}

// pushQuiet and popQuiet are push/pop without occupancy-bitset
// maintenance. The sharded stepper iterates switches through their
// incoming-link lists and never consults occ, but its shards would race
// on the shared bitset words (a 64-link word spans shard boundaries); the
// quiet variants keep every mutation inside the per-queue state a single
// shard owns. A sim run stays on one engine throughout, and reset()
// clears occ, so a stale bitset never leaks into the sequential sweeps.

func (q *ringQueues) pushQuiet(i int, pk packet) (int32, bool) {
	n := q.size[i]
	if n >= q.cap {
		return n, false
	}
	pos := q.head[i] + n
	if pos >= q.cap {
		pos -= q.cap
	}
	q.buf[int32(i)*q.cap+pos] = pk
	q.size[i] = n + 1
	return n + 1, true
}

func (q *ringQueues) popQuiet(i int) packet {
	h := q.head[i]
	pk := q.buf[int32(i)*q.cap+h]
	h++
	if h == q.cap {
		h = 0
	}
	q.head[i] = h
	q.size[i]--
	return pk
}
