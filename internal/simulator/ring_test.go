package simulator

import "testing"

// FuzzRingQueue drives one ringQueues instance with an arbitrary
// operation tape and checks it against a reference slice-of-slices model:
// same contents, same pop order, same rejection behaviour at capacity,
// and an occupancy bitset that always mirrors the sizes.
func FuzzRingQueue(f *testing.F) {
	f.Add(2, 3, []byte{0, 1, 2, 0x80, 0x81, 0, 0x80})
	f.Add(1, 1, []byte{0, 0, 0x80, 0x80})
	f.Add(70, 2, []byte{0, 65, 69, 0x80, 0xC1})
	f.Fuzz(func(t *testing.T, links, capacity int, ops []byte) {
		if links < 1 || links > 256 || capacity < 1 || capacity > 16 {
			t.Skip()
		}
		q := newRingQueues(links, capacity)
		ref := make([][]packet, links)
		for step, op := range ops {
			i := int(op&0x7f) % links
			if op&0x80 == 0 {
				// push
				pk := packet{dst: int32(step), born: int32(i)}
				ln, ok := q.push(i, pk)
				wantOK := len(ref[i]) < capacity
				if ok != wantOK {
					t.Fatalf("step %d: push(%d) ok=%v, want %v", step, i, ok, wantOK)
				}
				if ok {
					ref[i] = append(ref[i], pk)
					if int(ln) != len(ref[i]) {
						t.Fatalf("step %d: push(%d) occupancy %d, want %d", step, i, ln, len(ref[i]))
					}
				} else if int(ln) != capacity {
					t.Fatalf("step %d: full push(%d) occupancy %d, want %d", step, i, ln, capacity)
				}
			} else if len(ref[i]) > 0 {
				// pop (front first, then pop, as the advance loop does)
				if got, want := q.front(i), ref[i][0]; got != want {
					t.Fatalf("step %d: front(%d) = %+v, want %+v", step, i, got, want)
				}
				if got, want := q.pop(i), ref[i][0]; got != want {
					t.Fatalf("step %d: pop(%d) = %+v, want %+v", step, i, got, want)
				}
				ref[i] = ref[i][1:]
			}
			if got, want := q.len(i), int32(len(ref[i])); got != want {
				t.Fatalf("step %d: len(%d) = %d, want %d", step, i, got, want)
			}
			occBit := q.occ[i>>6]>>(uint(i)&63)&1 == 1
			if occBit != (len(ref[i]) > 0) {
				t.Fatalf("step %d: occ bit for %d is %v with %d queued", step, i, occBit, len(ref[i]))
			}
		}
		// Drain everything and verify full FIFO order and a clean bitset.
		for i := range ref {
			for len(ref[i]) > 0 {
				if got, want := q.pop(i), ref[i][0]; got != want {
					t.Fatalf("drain: pop(%d) = %+v, want %+v", i, got, want)
				}
				ref[i] = ref[i][1:]
			}
		}
		for w, word := range q.occ {
			if word != 0 {
				t.Fatalf("drained bitset word %d = %#x, want 0", w, word)
			}
		}
	})
}

// TestRingQueueReset checks that reset restores the empty state.
func TestRingQueueReset(t *testing.T) {
	q := newRingQueues(5, 3)
	for i := 0; i < 5; i++ {
		q.push(i, packet{dst: int32(i)})
	}
	q.reset()
	for i := 0; i < 5; i++ {
		if q.len(i) != 0 {
			t.Errorf("after reset, len(%d) = %d", i, q.len(i))
		}
	}
	for w, word := range q.occ {
		if word != 0 {
			t.Errorf("after reset, occ[%d] = %#x", w, word)
		}
	}
	// The rings must be usable again.
	q.push(2, packet{dst: 9})
	if q.pop(2) != (packet{dst: 9}) {
		t.Error("push/pop after reset broken")
	}
}
