package simulator

import "fmt"

// The invariant checker is the simulator's in-core half of the
// correctness tooling built around internal/refsim: after every cycle it
// re-derives the structural invariants the allocation-free hot path is
// supposed to preserve and panics on the first violation, naming the
// cycle and the state that broke. It is opt-in because the checks cost
// O(links) per cycle: the `simcheck` build tag turns it on for a whole
// test run (`go test -tags simcheck ./...`, what `make race` uses), and
// tests can flip invariantsEnabled directly for targeted runs.
//
// Checked invariants:
//
//  1. Packet conservation: every packet ever accepted into a stage-0
//     buffer is delivered, dropped, or still queued —
//     injected == delivered + dropped + occupied, counted from cycle 0
//     (warmup included) so the balance is exact at every cycle.
//  2. Occupancy-bitset / ring agreement: bit i of the occupancy bitset is
//     set iff ring queue i is nonempty; ring sizes stay within
//     [0, QueueCap], heads within [0, QueueCap); and the incrementally
//     maintained total occupancy equals the sum of ring sizes.
//  3. Latency histogram mass (end of run): sum(latHist) == Delivered, and
//     the folded stats.Stream holds exactly one sample per delivery.
//  4. Shard-merge correctness (sharded engine only): the merged counters,
//     the conservation balance, and the merged latency-histogram mass all
//     equal the exact sums over the per-shard accumulators. Invariants 1
//     and 2's occupancy recount already anchors the merged totals to the
//     ring ground truth every cycle; checkShardMerge re-verifies the
//     merge itself at end of run. The bitset half of invariant 2 is
//     skipped in shard mode, where occ is deliberately unmaintained (see
//     ringQueues.pushQuiet).
var invariantsEnabled = invariantsDefault

// invariantCounters shadow the Metrics counters from cycle 0 (Metrics
// only counts the measured window, so it cannot anchor a per-cycle
// balance). dropped counts in-flight drops only: a packet refused a
// stage-0 buffer by blockage was never accepted into the network, and is
// visible in Metrics.Dropped but not in the conservation balance.
type invariantCounters struct {
	injected  int64
	delivered int64
	dropped   int64
}

// checkInvariants verifies invariants 1 and 2 after a cycle. It panics
// (rather than returning an error) because a violation means the core's
// state is corrupt and every later metric would be garbage.
func (s *sim) checkInvariants(cycle int) {
	var total int64
	for i := 0; i < s.L; i++ {
		n := s.q.size[i]
		if n < 0 || n > s.q.cap {
			panic(fmt.Sprintf("simulator invariant: cycle %d: queue %d size %d outside [0,%d]",
				cycle, i, n, s.q.cap))
		}
		if h := s.q.head[i]; h < 0 || h >= s.q.cap {
			panic(fmt.Sprintf("simulator invariant: cycle %d: queue %d head %d outside [0,%d)",
				cycle, i, h, s.q.cap))
		}
		if s.intraP <= 1 { // the sharded engine does not maintain occ
			bit := s.q.occ[i>>6]&(1<<uint(i&63)) != 0
			if (n > 0) != bit {
				panic(fmt.Sprintf("simulator invariant: cycle %d: queue %d length %d disagrees with occupancy bit %v",
					cycle, i, n, bit))
			}
		}
		total += int64(n)
	}
	if total != s.occupied {
		panic(fmt.Sprintf("simulator invariant: cycle %d: incremental occupancy %d != sum of ring lengths %d",
			cycle, s.occupied, total))
	}
	if s.ck.injected != s.ck.delivered+s.ck.dropped+total {
		panic(fmt.Sprintf("simulator invariant: cycle %d: conservation broken: injected %d != delivered %d + dropped %d + occupied %d",
			cycle, s.ck.injected, s.ck.delivered, s.ck.dropped, total))
	}
}

// checkShardMerge verifies invariant 4 at end of a sharded run, after the
// per-shard latency histograms are folded into s.latHist: the merged
// histogram mass and the merged conservation counters must equal the
// exact sums over the shards.
func (s *sim) checkShardMerge() {
	var mergedMass, shardMass int64
	for _, c := range s.latHist {
		mergedMass += int64(c)
	}
	var ckI, ckD, ckX int64
	for k := range s.shards {
		sh := &s.shards[k]
		for _, c := range sh.latHist {
			shardMass += int64(c)
		}
		ckI += sh.ckInjected
		ckD += sh.ckDelivered
		ckX += sh.ckDropped
	}
	if mergedMass != shardMass {
		panic(fmt.Sprintf("simulator invariant: merged latency mass %d != sum over shards %d",
			mergedMass, shardMass))
	}
	if s.ck.injected != ckI || s.ck.delivered != ckD || s.ck.dropped != ckX {
		panic(fmt.Sprintf("simulator invariant: merged conservation counters (%d,%d,%d) != shard sums (%d,%d,%d)",
			s.ck.injected, s.ck.delivered, s.ck.dropped, ckI, ckD, ckX))
	}
	if ckI != ckD+ckX+s.occupied {
		panic(fmt.Sprintf("simulator invariant: shard-summed conservation broken: injected %d != delivered %d + dropped %d + occupied %d",
			ckI, ckD, ckX, s.occupied))
	}
}

// checkLatencyMass verifies invariant 3 once the run's latency histogram
// has been folded into the metrics.
func (s *sim) checkLatencyMass() {
	var mass int64
	for _, c := range s.latHist {
		mass += int64(c)
	}
	if mass != int64(s.m.Delivered) {
		panic(fmt.Sprintf("simulator invariant: latency histogram mass %d != delivered %d",
			mass, s.m.Delivered))
	}
	if s.lat.N() != s.m.Delivered {
		panic(fmt.Sprintf("simulator invariant: latency stream holds %d samples, delivered %d",
			s.lat.N(), s.m.Delivered))
	}
}
