package simulator

import (
	"math/rand"
	"strings"
	"testing"

	"iadm/internal/blockage"
	"iadm/internal/topology"
)

// enableInvariants turns the per-cycle checker on for one test,
// restoring the build-tag default afterwards.
func enableInvariants(t *testing.T) {
	t.Helper()
	prev := invariantsEnabled
	invariantsEnabled = true
	t.Cleanup(func() { invariantsEnabled = prev })
}

// mustPanic runs fn and asserts it panics with a message containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want panic containing %q", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v does not contain %q", r, want)
		}
	}()
	fn()
}

// TestInvariantCheckerAcceptsRealRuns runs the checker over every
// simulator axis: on correct code it must stay silent through warmup,
// blockage drops, transient faults, bursty sources and both switch
// models.
func TestInvariantCheckerAcceptsRealRuns(t *testing.T) {
	enableInvariants(t)
	p := topology.MustParams(8)
	blk := blockage.NewSet(p)
	blk.RandomLinks(rand.New(rand.NewSource(7)), 5)
	cfgs := []Config{
		{N: 8, Policy: StaticC, Load: 0.4, QueueCap: 4, Cycles: 400, Warmup: 50, Seed: 1},
		{N: 16, Policy: RandomState, Load: 0.8, QueueCap: 2, Cycles: 300, Seed: 2, Switches: SingleInput},
		{N: 8, Policy: AdaptiveSSDT, Load: 0.6, QueueCap: 3, Cycles: 300, Warmup: 30, Seed: 3, Blocked: blk},
		{N: 8, Policy: AdaptiveSSDT, Load: 0.5, QueueCap: 4, Cycles: 300, Seed: 4, FaultRate: 0.02, RepairCycles: 15},
		{N: 8, Policy: RandomState, Load: 0.7, QueueCap: 1, Cycles: 300, Seed: 5, Bursty: true, Traffic: Hotspot, HotspotFrac: 0.4},
		{N: 4, Policy: AdaptiveSSDT, Load: 1.0, QueueCap: 2, Cycles: 200, Seed: 6, Traffic: Tornado, Switches: SingleInput},
	}
	for i, cfg := range cfgs {
		if _, err := Run(cfg); err != nil {
			t.Errorf("config %d: %v", i, err)
		}
	}
}

// newCheckedSim builds a small sim with the checker armed, ready for
// state corruption.
func newCheckedSim(t *testing.T) *sim {
	t.Helper()
	enableInvariants(t)
	s, err := newSim(Config{N: 8, Policy: StaticC, Load: 0.5, QueueCap: 4, Cycles: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.reset(1)
	return s
}

// TestInvariantConservationPanics: a packet smuggled into a queue without
// being counted as injected breaks injected == delivered+dropped+occupied.
func TestInvariantConservationPanics(t *testing.T) {
	s := newCheckedSim(t)
	s.q.push(0, packet{dst: 1, born: 0})
	s.occupied++ // occupancy bookkeeping is consistent; the balance is not
	mustPanic(t, "conservation broken", func() { s.checkInvariants(0) })
}

// TestInvariantBitsetRingAgreementPanics: an occupancy bit with no queued
// packet behind it.
func TestInvariantBitsetRingAgreementPanics(t *testing.T) {
	s := newCheckedSim(t)
	s.q.occ[0] |= 1 // queue 0 is empty but its bit says otherwise
	mustPanic(t, "disagrees with occupancy bit", func() { s.checkInvariants(0) })
}

// TestInvariantOccupancyTotalPanics: the incrementally maintained total
// drifting from the sum of ring lengths.
func TestInvariantOccupancyTotalPanics(t *testing.T) {
	s := newCheckedSim(t)
	s.occupied = 3
	mustPanic(t, "incremental occupancy", func() { s.checkInvariants(0) })
}

// TestInvariantRingBoundsPanics: a corrupted ring size outside
// [0, QueueCap].
func TestInvariantRingBoundsPanics(t *testing.T) {
	s := newCheckedSim(t)
	s.q.size[2] = s.q.cap + 1
	mustPanic(t, "outside [0,", func() { s.checkInvariants(0) })
}

// TestInvariantLatencyMassPanics: histogram counts that do not sum to the
// number of delivered packets.
func TestInvariantLatencyMassPanics(t *testing.T) {
	enableInvariants(t)
	s, err := newSim(Config{N: 8, Policy: StaticC, Load: 0, QueueCap: 4, Cycles: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.reset(1)
	s.latHist[3] = 7 // phantom deliveries; the zero-load run delivers none
	mustPanic(t, "latency histogram mass", func() { s.run() })
}

// TestInvariantCheckerOffByDefault documents that corrupted state goes
// unnoticed when the checker is disabled (the production configuration):
// the checker is opt-in, not a tax on the hot path.
func TestInvariantCheckerOffByDefault(t *testing.T) {
	prev := invariantsEnabled
	invariantsEnabled = false
	t.Cleanup(func() { invariantsEnabled = prev })
	s, err := newSim(Config{N: 8, Policy: StaticC, Load: 0.5, QueueCap: 4, Cycles: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.reset(1)
	if s.check {
		t.Fatal("sim armed with invariants disabled")
	}
	s.occupied = 99 // silently tolerated without the checker...
	s.occupied = 0  // ...restore so the run itself stays sane
	s.run()
}
