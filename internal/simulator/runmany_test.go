package simulator

import (
	"fmt"
	"reflect"
	"testing"
)

// metricsEqual compares two Metrics for bit-identical results, including
// the full latency and utilization distributions.
func metricsEqual(a, b Metrics) bool {
	if a.Injected != b.Injected || a.Delivered != b.Delivered ||
		a.Dropped != b.Dropped || a.Refused != b.Refused ||
		a.MaxQueue != b.MaxQueue || a.MeanQueue != b.MeanQueue ||
		a.Throughput != b.Throughput {
		return false
	}
	return reflect.DeepEqual(a.Latency, b.Latency) &&
		reflect.DeepEqual(a.UtilStraight, b.UtilStraight) &&
		reflect.DeepEqual(a.UtilNonstraight, b.UtilNonstraight)
}

// sweepConfigs is a mixed batch exercising several traffic patterns,
// policies and the fault model.
func sweepConfigs() []Config {
	base := Config{N: 16, Load: 0.5, QueueCap: 4, Cycles: 300, Warmup: 30, Traffic: Uniform}
	var cfgs []Config
	for i, pol := range []Policy{StaticC, RandomState, AdaptiveSSDT} {
		cfg := base
		cfg.Policy = pol
		cfg.Seed = int64(100 + i)
		cfgs = append(cfgs, cfg)
	}
	hot := base
	hot.Policy = AdaptiveSSDT
	hot.Traffic = Hotspot
	hot.HotspotDest = 3
	hot.HotspotFrac = 0.2
	hot.Seed = 7
	cfgs = append(cfgs, hot)
	flt := base
	flt.Policy = AdaptiveSSDT
	flt.FaultRate = 0.001
	flt.RepairCycles = 20
	flt.Switches = SingleInput
	flt.Seed = 8
	cfgs = append(cfgs, flt)
	return cfgs
}

// TestRunManyMatchesRun checks the central RunMany contract: fanning a
// batch out across workers yields bit-identical Metrics, in order, to
// running each config serially — for any worker count.
func TestRunManyMatchesRun(t *testing.T) {
	cfgs := sweepConfigs()
	want := make([]Metrics, len(cfgs))
	for i, cfg := range cfgs {
		m, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run(%d): %v", i, err)
		}
		want[i] = m
	}
	for _, workers := range []int{0, 1, 2, 4, 16} {
		got, err := RunManyWorkers(cfgs, workers)
		if err != nil {
			t.Fatalf("RunManyWorkers(workers=%d): %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if !metricsEqual(got[i], want[i]) {
				t.Errorf("workers=%d run %d: metrics differ from serial Run\n got: %+v\nwant: %+v",
					workers, i, got[i], want[i])
			}
		}
	}
}

// TestRunSameSeedDeterministic checks that a config re-run with the same
// seed reproduces identical metrics, and that a Runner reused across
// seeds matches the one-shot Run path.
func TestRunSameSeedDeterministic(t *testing.T) {
	cfg := Config{
		N: 32, Policy: AdaptiveSSDT, Load: 0.7, QueueCap: 4,
		Cycles: 500, Warmup: 50, Seed: 42, Traffic: Uniform,
		Switches: SingleInput,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !metricsEqual(a, b) {
		t.Fatalf("same seed, different metrics:\n a: %+v\n b: %+v", a, b)
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{42, 7, 42} {
		cfg.Seed = seed
		want, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := r.RunSeed(seed)
		if !metricsEqual(got, want) {
			t.Fatalf("Runner seed %d: metrics differ from one-shot Run", seed)
		}
	}
}

// TestRunManyError checks that the first failing config (by index, not by
// completion order) is the one reported, and that no results leak out.
func TestRunManyError(t *testing.T) {
	ok := Config{N: 8, Policy: StaticC, Load: 0.5, QueueCap: 2, Cycles: 50, Seed: 1}
	bad := ok
	bad.Load = 2 // invalid
	ms, err := RunManyWorkers([]Config{ok, bad, {N: 7}, ok}, 4)
	if err == nil {
		t.Fatal("want error from invalid config, got nil")
	}
	if ms != nil {
		t.Fatalf("want nil results on error, got %v", ms)
	}
	if want := "run 1 ("; !contains(err.Error(), want) {
		t.Errorf("error %q does not name the first failing index (%q)", err, want)
	}
	if want := "load=2"; !contains(err.Error(), want) {
		t.Errorf("error %q does not summarize the failing config (%q)", err, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestSweep checks seed decorrelation and the vary hook.
func TestSweep(t *testing.T) {
	base := Config{N: 8, Policy: AdaptiveSSDT, Load: 0.5, QueueCap: 4, Cycles: 200, Warmup: 20, Seed: 100}
	ms, err := Sweep(base, 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("got %d results, want 4", len(ms))
	}
	// Each point must match a serial run at seed base.Seed+i.
	for i := range ms {
		cfg := base
		cfg.Seed = base.Seed + int64(i)
		want, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !metricsEqual(ms[i], want) {
			t.Errorf("sweep point %d differs from serial run at seed %d", i, cfg.Seed)
		}
	}
	// vary can override any field, including the load.
	loads := []float64{0.2, 0.4, 0.6}
	ms, err = Sweep(base, len(loads), 0, func(i int, cfg *Config) { cfg.Load = loads[i] })
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for i, m := range ms {
		if m.Injected <= prev {
			t.Errorf("point %d: injected %d not increasing with load", i, m.Injected)
		}
		prev = m.Injected
	}

	if _, err := Sweep(base, -1, 0, nil); err == nil {
		t.Error("negative points: want error")
	}
	if ms, err := Sweep(base, 0, 0, nil); err != nil || len(ms) != 0 {
		t.Errorf("zero points: got (%v, %v), want empty", ms, err)
	}
}

// TestRunManyConcurrentStress drives many workers over many configs; its
// real value is under `go test -race`, where it proves the worker pool
// shares no simulation state across goroutines.
func TestRunManyConcurrentStress(t *testing.T) {
	cfgs := make([]Config, 32)
	for i := range cfgs {
		cfgs[i] = Config{
			N: 8, Policy: Policy(i % 3), Load: 0.6, QueueCap: 3,
			Cycles: 100, Warmup: 10, Seed: int64(i), Traffic: TrafficKind(i % 2),
			HotspotDest: i % 8, HotspotFrac: 0.2,
		}
	}
	got, err := RunManyWorkers(cfgs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		want, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !metricsEqual(got[i], want) {
			t.Errorf("run %d: parallel result differs from serial", i)
		}
	}
}

// TestValidation covers the config checks, including the ones added with
// the allocation-free core (negative warmup, negative repair cycles).
func TestValidation(t *testing.T) {
	ok := Config{N: 8, Load: 0.5, QueueCap: 2, Cycles: 10}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative load", func(c *Config) { c.Load = -0.1 }},
		{"load above one", func(c *Config) { c.Load = 1.5 }},
		{"zero queue cap", func(c *Config) { c.QueueCap = 0 }},
		{"zero cycles", func(c *Config) { c.Cycles = 0 }},
		{"negative warmup", func(c *Config) { c.Warmup = -1 }},
		{"cycle counter overflow", func(c *Config) { c.Cycles = 1 << 31; c.Warmup = 1 << 31 }},
		{"bad permutation", func(c *Config) { c.Traffic = PermutationTraffic; c.Perm = []int{0, 1} }},
		{"hotspot dest out of range", func(c *Config) { c.Traffic = Hotspot; c.HotspotDest = 8 }},
		{"negative fault rate", func(c *Config) { c.FaultRate = -0.5 }},
		{"fault rate above one", func(c *Config) { c.FaultRate = 1.5 }},
		{"negative repair cycles", func(c *Config) { c.FaultRate = 0.1; c.RepairCycles = -1 }},
		{"bad N", func(c *Config) { c.N = 6 }},
	}
	for _, tc := range cases {
		cfg := ok
		tc.mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: want error, got nil (cfg %+v)", tc.name, cfg)
		}
	}
	if _, err := Run(ok); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	// RepairCycles may be anything while faults are disabled.
	cfg := ok
	cfg.RepairCycles = -5
	if _, err := Run(cfg); err != nil {
		t.Errorf("negative repair cycles without faults rejected: %v", err)
	}
}

// TestRunManyEmpty checks the degenerate batch.
func TestRunManyEmpty(t *testing.T) {
	ms, err := RunMany(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("got %d results, want 0", len(ms))
	}
}

// ExampleSweep shows the replica-sweep shape RunMany was built for.
func ExampleSweep() {
	base := Config{N: 8, Policy: AdaptiveSSDT, Load: 0.5, QueueCap: 4, Cycles: 400, Warmup: 40, Seed: 1}
	ms, err := Sweep(base, 3, 0, nil)
	if err != nil {
		panic(err)
	}
	for i, m := range ms {
		fmt.Printf("replica %d: delivered=%d\n", i, m.Delivered)
	}
	// Output:
	// replica 0: delivered=1590
	// replica 1: delivered=1641
	// replica 2: delivered=1620
}
