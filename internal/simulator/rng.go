package simulator

import "math"

// The simulator's randomness is counter-based: every draw is a pure
// function of (seed, cycle, entity, purpose) pushed through a
// splitmix64-style finalizer, instead of a position in a sequential
// stream. That property is what makes intra-run parallelism exact — any
// switch's draw can be evaluated on any worker in any order and the
// result is bit-identical to a single-threaded run — and it also means
// policies that draw nothing (static-C, adaptive-SSDT) consume nothing,
// so enabling or disabling one draw site never perturbs another.
//
// The entity is the dense link index for in-flight routing draws and the
// source index for injection-side draws; the purpose constants below keep
// those two id spaces (and every draw site) in disjoint hash domains.
// internal/refsim reimplements the same function and coordinates
// independently, which is what keeps the differential oracle exact on
// fault-free configs regardless of evaluation order.

// Draw-purpose domain separators. Arbitrary odd 64-bit constants; the
// values are part of the refsim RNG contract and must match the copies in
// internal/refsim.
const (
	drawLoad      = 0xa0761d6478bd642f // per-source injection Bernoulli
	drawDst       = 0xe7037ed1a0b428db // per-source uniform destination
	drawHot       = 0x8ebc6af09c88c6e3 // per-source hotspot Bernoulli
	drawRoute     = 0x589965cc75374cc3 // per-incoming-link random-state choice
	drawRouteInj  = 0x1d8e4e27c47d124f // per-source random-state choice at stage 0
	drawBurst     = 0xeb44accab455d165 // per-source on/off sojourn Bernoulli
	drawBurstInit = 0x2f9be6cc5be4f095 // per-source initial burst state
	drawFaultSkip = 0x9e6c63d0a161fe15 // fault skip-chain (simulator only)
)

// mix64 is the splitmix64 finalizer (Steele, Lea & Flood, OOPSLA 2014):
// a full-avalanche 64-bit permutation.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ctrRNG is the counter-based generator: stateless apart from the seed.
type ctrRNG struct {
	seed uint64
}

func newCtrRNG(seed int64) ctrRNG { return ctrRNG{seed: uint64(seed)} }

// word returns 64 uniformly random bits for the draw identified by
// (cycle, entity, purpose). Cycle and entity are spread by distinct odd
// multipliers before mixing (a bare XOR of two small integers would
// collide constantly: 1^2 == 3^0), and two finalizer rounds give full
// avalanche over the structured input.
func (r ctrRNG) word(cycle, entity, purpose uint64) uint64 {
	z := r.seed ^ purpose
	z += cycle * 0x9e3779b97f4a7c15
	z += entity * 0xd1b54a32d192ed03
	return mix64(mix64(z) + 0x9e3779b97f4a7c15)
}

// intn returns a uniform value in [0, n) for n a power of two.
func (r ctrRNG) intn(mask, cycle, entity, purpose uint64) int {
	return int(r.word(cycle, entity, purpose) & mask)
}

// bit returns a fair coin flip.
func (r ctrRNG) bit(cycle, entity, purpose uint64) bool {
	return r.word(cycle, entity, purpose)&1 == 0
}

// hit reports one Bernoulli draw against a precomputed threshold.
func (r ctrRNG) hit(t, cycle, entity, purpose uint64) bool {
	return r.word(cycle, entity, purpose) < t
}

// bernoulliThreshold converts a probability into an integer threshold t
// such that word() < t holds with probability p, so per-cycle Bernoulli
// draws in the hot loop are a single integer compare instead of a float
// conversion. p >= 1 maps to MaxUint64 (a miss then has probability 2^-64,
// i.e. it will not occur within any feasible simulation length).
func bernoulliThreshold(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.MaxUint64
	}
	return uint64(p * float64(1<<63) * 2)
}

// geometricSkipFromWord draws the number of Bernoulli(p) trials up to and
// including the next success from 64 uniform bits, via inversion:
// 1 + floor(ln U / ln(1-p)). invLn1mP must be 1/ln(1-p) (precomputed once
// per run); p >= 1 is signalled by invLn1mP == 0 and yields a skip of 1
// (every trial hits). The fault injector keys each skip draw by the trial
// position it starts from, so the resulting fault pattern is a pure
// function of the seed — independent of worker count and of every other
// draw site — while still costing O(faults) instead of O(links * cycles).
func geometricSkipFromWord(u uint64, invLn1mP float64) int64 {
	if invLn1mP == 0 {
		return 1
	}
	unit := (float64(u>>11) + 1) * (1.0 / (1 << 53)) // uniform in (0, 1]
	skip := int64(math.Log(unit)*invLn1mP) + 1
	if skip < 1 {
		return 1
	}
	return skip
}
