package simulator

import "math"

// splitmix is the splitmix64 generator (Steele, Lea & Flood, OOPSLA 2014):
// a single 64-bit additive counter pushed through a full-avalanche mix.
// It is allocation-free, branch-free and seedable from any 64-bit value,
// which is exactly what the per-run RNGs of RunMany need; math/rand's
// *rand.Rand costs an interface call plus a large seeded table per run.
type splitmix struct {
	state uint64
}

func newSplitmix(seed int64) splitmix { return splitmix{state: uint64(seed)} }

// next returns the next 64 uniformly random bits.
func (r *splitmix) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n) for n a power of two.
func (r *splitmix) intn(mask uint64) int { return int(r.next() & mask) }

// bit returns a fair coin flip.
func (r *splitmix) bit() bool { return r.next()&1 == 0 }

// bernoulliThreshold converts a probability into an integer threshold t
// such that next() < t holds with probability p, so per-cycle Bernoulli
// draws in the hot loop are a single integer compare instead of a float
// conversion. p >= 1 maps to MaxUint64 (a miss then has probability 2^-64,
// i.e. it will not occur within any feasible simulation length).
func bernoulliThreshold(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.MaxUint64
	}
	return uint64(p * float64(1<<63) * 2)
}

// hit reports one Bernoulli(t) draw against a precomputed threshold.
func (r *splitmix) hit(t uint64) bool { return r.next() < t }

// unitOpen returns a uniform float64 in (0, 1], suitable as the argument
// of a logarithm.
func (r *splitmix) unitOpen() float64 {
	return (float64(r.next()>>11) + 1) * (1.0 / (1 << 53))
}

// geometricSkip draws the number of Bernoulli(p) trials up to and
// including the next success, via inversion: 1 + floor(ln U / ln(1-p)).
// invLn1mP must be 1/ln(1-p) (precomputed once per run); p >= 1 is
// signalled by invLn1mP == 0 and yields a skip of 1 (every trial hits).
// Replacing the per-link-per-cycle fault draws with this skip makes fault
// injection cost O(faults) instead of O(links * cycles).
func (r *splitmix) geometricSkip(invLn1mP float64) int64 {
	if invLn1mP == 0 {
		return 1
	}
	skip := int64(math.Log(r.unitOpen())*invLn1mP) + 1
	if skip < 1 {
		return 1
	}
	return skip
}
