//go:build simcheck

package simulator

// invariantsDefault is true under the simcheck build tag: every sim in
// the process re-verifies packet conservation and queue-state agreement
// after each cycle (see invariants.go). `make race` runs the full test
// suite this way.
const invariantsDefault = true
