package simulator

import (
	"fmt"
	"testing"

	"iadm/internal/blockage"
	"iadm/internal/topology"
)

// shardSampleConfigs is a stratified sample over the dimensions that
// exercise distinct sharded-engine paths: network size (including N=2,
// where the stage loop is empty, and sizes that don't divide evenly into
// the worker counts under test), every policy (RandomState consumes
// routing draws, AdaptiveSSDT reads queue lengths, StaticC draws
// nothing), traffic patterns, both switch models, bursty modulation,
// static blockage, and the transient-fault model.
func shardSampleConfigs(t *testing.T) []Config {
	t.Helper()
	base := Config{N: 16, Load: 0.6, QueueCap: 4, Cycles: 200, Warmup: 20, Traffic: Uniform}

	var cfgs []Config
	add := func(mut func(*Config)) {
		cfg := base
		cfg.Seed = int64(1000 + len(cfgs))
		mut(&cfg)
		cfgs = append(cfgs, cfg)
	}

	for _, n := range []int{2, 8, 16, 64} {
		n := n
		for _, pol := range []Policy{StaticC, RandomState, AdaptiveSSDT} {
			pol := pol
			add(func(c *Config) { c.N = n; c.Policy = pol })
		}
	}
	add(func(c *Config) { c.Switches = SingleInput; c.Policy = AdaptiveSSDT })
	add(func(c *Config) { c.Switches = SingleInput; c.Policy = RandomState; c.N = 8 })
	add(func(c *Config) { c.Traffic = Hotspot; c.HotspotDest = 3; c.HotspotFrac = 0.3 })
	add(func(c *Config) { c.Traffic = BitComplementTraffic; c.Policy = RandomState })
	add(func(c *Config) { c.Traffic = Tornado; c.Policy = AdaptiveSSDT })
	add(func(c *Config) {
		c.Traffic = PermutationTraffic
		perm := make([]int, c.N)
		for i := range perm {
			perm[i] = (i + 5) % c.N
		}
		c.Perm = perm
	})
	add(func(c *Config) { c.Bursty = true; c.BurstOn = 7; c.BurstOff = 3; c.Policy = RandomState })
	add(func(c *Config) { c.FaultRate = 0.002; c.RepairCycles = 12; c.Policy = AdaptiveSSDT })
	add(func(c *Config) {
		p, err := topology.NewParams(c.N)
		if err != nil {
			t.Fatal(err)
		}
		set := blockage.NewSet(p)
		set.Block(topology.Link{Stage: 1, From: 4, Kind: topology.Plus})
		set.Block(topology.Link{Stage: 2, From: 9, Kind: topology.Straight})
		c.Blocked = set
		c.Policy = RandomState
	})
	add(func(c *Config) { c.Load = 1.0; c.QueueCap = 2; c.Policy = AdaptiveSSDT }) // saturated: refusals + stalls
	return cfgs
}

// TestIntraWorkersInvariance is the tentpole's core property: Run metrics
// are bit-identical for every IntraWorkers value, because each random
// draw is a pure function of (seed, cycle, entity, purpose) and shard
// merging uses exact integer arithmetic. 0 and 1 run the sequential
// engine, the rest the sharded one (3 does not divide most N evenly; 8
// exceeds N for the N=2 configs, exercising the clamp).
func TestIntraWorkersInvariance(t *testing.T) {
	for i, cfg := range shardSampleConfigs(t) {
		t.Run(fmt.Sprintf("cfg%02d", i), func(t *testing.T) {
			seq := cfg
			seq.IntraWorkers = 0
			want, err := Run(seq)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []int{1, 2, 3, 8} {
				par := cfg
				par.IntraWorkers = p
				got, err := Run(par)
				if err != nil {
					t.Fatal(err)
				}
				if !metricsEqual(want, got) {
					t.Errorf("IntraWorkers=%d diverges from sequential run:\n got %+v\nwant %+v", p, got, want)
				}
			}
		})
	}
}

// TestRunnerShardedReuse checks that a sharded Runner's buffers and
// worker pool are correctly rewound between runs: interleaved seeds
// reproduce their first-run metrics exactly, and Close is idempotent.
func TestRunnerShardedReuse(t *testing.T) {
	cfg := Config{N: 32, Policy: AdaptiveSSDT, Load: 0.7, QueueCap: 4,
		Cycles: 150, Warmup: 15, Traffic: Uniform, IntraWorkers: 4}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	first := make(map[int64]Metrics)
	for _, seed := range []int64{1, 2, 3} {
		first[seed] = r.RunSeed(seed)
	}
	for _, seed := range []int64{3, 1, 2, 1} {
		if got := r.RunSeed(seed); !metricsEqual(got, first[seed]) {
			t.Fatalf("seed %d not reproducible on reuse:\n got %+v\nwant %+v", seed, got, first[seed])
		}
	}
	r.Close() // second Close must be a no-op
}

// TestIntraWorkersValidation pins the IntraWorkers config contract.
func TestIntraWorkersValidation(t *testing.T) {
	cfg := Config{N: 8, Load: 0.5, QueueCap: 4, Cycles: 10, IntraWorkers: -1}
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative IntraWorkers accepted")
	}
	cfg.IntraWorkers = 64 // clamped to N=8
	if _, err := Run(cfg); err != nil {
		t.Fatalf("clamped IntraWorkers rejected: %v", err)
	}
}
