// Package baseline implements the routing schemes the paper compares
// against, so that the complexity and fault-tolerance claims can be
// measured rather than asserted:
//
//   - distance-tag routing: the classic Gamma/IADM scheme in which the
//     routing tag is (a representation of) the distance D = d - s mod N;
//   - redundant signed-digit representations of D and their enumeration,
//     the all-paths algorithm of Parker and Raghavendra [13][14];
//   - the McMillen-Siegel dynamic rerouting techniques [9][10]: sign
//     switching via two's-complement tag recomputation (an O(log N)
//     operation, the cost the paper's O(1) schemes eliminate) and the
//     single-stage look-ahead variant for some straight-link faults;
//   - the Lee-Lee destination-tag local-control algorithm [7], which finds
//     exactly one path per source/destination pair.
package baseline

import (
	"fmt"

	"iadm/internal/bitutil"
	"iadm/internal/core"
	"iadm/internal/topology"
)

// Distance returns the routing distance D = (d - s) mod N.
func Distance(p topology.Params, s, d int) int { return p.Mod(d - s) }

// Digits is a signed-digit routing tag: one digit in {-1, 0, +1} per stage;
// digit i selects the -2^i link, the straight link, or the +2^i link. A
// digit vector routes s to d iff sum(digits[i] * 2^i) ≡ d - s (mod N).
type Digits []int

// Value returns sum(digits[i] * 2^i) reduced mod N.
func (g Digits) Value(p topology.Params) int {
	v := 0
	for i, t := range g {
		v += t << uint(i)
	}
	return p.Mod(v)
}

// String renders the digits LSB-first with '-', '0', '+'.
func (g Digits) String() string {
	buf := make([]byte, len(g))
	for i, t := range g {
		switch t {
		case -1:
			buf[i] = '-'
		case 0:
			buf[i] = '0'
		case 1:
			buf[i] = '+'
		default:
			buf[i] = '?'
		}
	}
	return string(buf)
}

// BinaryDigits returns the canonical nonnegative representation of D: digit
// i is bit i of D. This is the positive-dominant distance tag.
func BinaryDigits(p topology.Params, D int) Digits {
	g := make(Digits, p.Stages())
	for i := range g {
		g[i] = int(bitutil.Bit(uint64(D), i))
	}
	return g
}

// NegativeDigits returns the negative-dominant representation of D: digit i
// is minus bit i of (N - D) mod N. For D = 0 it is all zeros.
func NegativeDigits(p topology.Params, D int) Digits {
	g := make(Digits, p.Stages())
	nd := p.Mod(-D)
	for i := range g {
		g[i] = -int(bitutil.Bit(uint64(nd), i))
	}
	return g
}

// PathFromDigits converts a signed-digit tag into the path it routes from
// source s, validating that every digit is applicable (a nonzero digit at
// stage i requires the remaining distance to have an odd 2^i component;
// equivalently the digits must sum to a legal distance step by step).
func PathFromDigits(p topology.Params, s int, g Digits) (core.Path, error) {
	if len(g) != p.Stages() {
		return core.Path{}, fmt.Errorf("baseline: %d digits, want %d", len(g), p.Stages())
	}
	links := make([]topology.Link, p.Stages())
	j := s
	for i, t := range g {
		var kind topology.LinkKind
		switch t {
		case -1:
			kind = topology.Minus
		case 0:
			kind = topology.Straight
		case 1:
			kind = topology.Plus
		default:
			return core.Path{}, fmt.Errorf("baseline: invalid digit %d at stage %d", t, i)
		}
		links[i] = topology.Link{Stage: i, From: j, Kind: kind}
		j = links[i].To(p)
	}
	return core.NewPath(p, s, links)
}

// Representations enumerates every signed-digit representation of D — the
// Parker-Raghavendra all-paths computation. There is a representation
// choice exactly at the stages where the remaining distance has an odd
// coefficient, so the count equals the number of link-paths between any
// (s, d) with distance D.
//
// The recurrence: entering stage i the remaining distance R is divisible by
// 2^i; let m = R / 2^i (mod 2^{n-i}). If m is even the digit is forced to
// 0; if m is odd both +1 and -1 are feasible.
func Representations(p topology.Params, D int) []Digits {
	var out []Digits
	g := make(Digits, p.Stages())
	var rec func(i, R int)
	rec = func(i, R int) {
		if i == p.Stages() {
			if R%p.Size() == 0 {
				out = append(out, append(Digits(nil), g...))
			}
			return
		}
		m := (R >> uint(i)) & 1
		if m == 0 {
			g[i] = 0
			rec(i+1, R)
			return
		}
		g[i] = 1
		rec(i+1, p.Mod(R-(1<<uint(i))))
		g[i] = -1
		rec(i+1, p.Mod(R+(1<<uint(i))))
	}
	rec(0, p.Mod(D))
	return out
}

// CountRepresentations returns the number of signed-digit representations
// of D without enumerating them: a dynamic program over the remaining
// residue per stage. At most two residues are live at any stage (they are
// exactly d minus the two pivots of Lemma A2.1), so the count costs O(n).
func CountRepresentations(p topology.Params, D int) int {
	type key struct{ i, R int }
	memo := make(map[key]int, 2*p.Stages())
	var rec func(i, R int) int
	rec = func(i, R int) int {
		if i == p.Stages() {
			if R == 0 {
				return 1
			}
			return 0
		}
		k := key{i, R}
		if v, ok := memo[k]; ok {
			return v
		}
		var v int
		if (R>>uint(i))&1 == 0 {
			v = rec(i+1, R)
		} else {
			v = rec(i+1, p.Mod(R-(1<<uint(i)))) + rec(i+1, p.Mod(R+(1<<uint(i))))
		}
		memo[k] = v
		return v
	}
	return rec(0, p.Mod(D))
}

// RouteDistanceStatic routes s to d along the canonical positive-dominant
// distance tag (bit i of D selects +2^i). It performs no rerouting: this is
// the non-fault-tolerant baseline.
func RouteDistanceStatic(p topology.Params, s, d int) core.Path {
	pa, err := PathFromDigits(p, s, BinaryDigits(p, Distance(p, s, d)))
	if err != nil {
		panic(fmt.Sprintf("baseline: static route failed: %v", err))
	}
	return pa
}

// RouteLeeLee is the Lee-Lee destination-tag local-control algorithm [7]:
// each switch compares bit i of its own label with bit i of the destination
// and, when they differ, moves +2^i from an even_i switch and -2^i from an
// odd_i switch — without computing the distance. It finds exactly one path
// per (s, d) pair (the same path as the paper's state model in the all-C
// network state) and has no rerouting capability of its own.
func RouteLeeLee(p topology.Params, s, d int) core.Path {
	return core.FollowState(p, s, d, core.NewNetworkState(p))
}
