package baseline

import (
	"math/rand"
	"testing"

	"iadm/internal/blockage"
	"iadm/internal/paths"
	"iadm/internal/topology"
)

var p8 = topology.MustParams(8)

func TestDistance(t *testing.T) {
	cases := []struct{ s, d, want int }{
		{0, 0, 0}, {1, 0, 7}, {0, 1, 1}, {7, 3, 4}, {3, 7, 4},
	}
	for _, c := range cases {
		if got := Distance(p8, c.s, c.d); got != c.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", c.s, c.d, got, c.want)
		}
	}
}

func TestBinaryAndNegativeDigits(t *testing.T) {
	g := BinaryDigits(p8, 5)
	if g.String() != "+0+" {
		t.Errorf("BinaryDigits(5) = %q", g.String())
	}
	if g.Value(p8) != 5 {
		t.Errorf("Value = %d", g.Value(p8))
	}
	ng := NegativeDigits(p8, 5) // -(3) = -011 -> digits -,-,0
	if ng.Value(p8) != 5 {
		t.Errorf("NegativeDigits(5).Value = %d, want 5", ng.Value(p8))
	}
	if NegativeDigits(p8, 0).Value(p8) != 0 {
		t.Error("NegativeDigits(0) nonzero")
	}
}

func TestPathFromDigits(t *testing.T) {
	// Digits (+,-,0) from s=1: 1 -> 2 -> 0 -> 0; the Figure 7 middle path.
	pa, err := PathFromDigits(p8, 1, Digits{1, -1, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 0, 0}
	for i, w := range want {
		if pa.SwitchAt(i) != w {
			t.Fatalf("path %v, want switches %v", pa, want)
		}
	}
	if _, err := PathFromDigits(p8, 1, Digits{2, 0, 0}); err == nil {
		t.Error("accepted invalid digit")
	}
	if _, err := PathFromDigits(p8, 1, Digits{0, 0}); err == nil {
		t.Error("accepted short digit vector")
	}
}

// TestRepresentationsFigure7 checks the Parker-Raghavendra enumeration on
// the paper's Figure 7 instance: D = 0-1 = 7 (≡ -1) has exactly the four
// representations (-,0,0), (+,-,0), (+,+,-), (+,+,+).
func TestRepresentationsFigure7(t *testing.T) {
	reps := Representations(p8, 7)
	got := map[string]bool{}
	for _, g := range reps {
		got[g.String()] = true
		if g.Value(p8) != 7 {
			t.Errorf("representation %v has value %d, want 7", g, g.Value(p8))
		}
	}
	want := []string{"-00", "+-0", "++-", "+++"}
	if len(reps) != len(want) {
		t.Fatalf("got %d representations %v, want %d", len(reps), got, len(want))
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing representation %q (got %v)", w, got)
		}
	}
}

// TestRepresentationsMatchPathCount: the number of signed-digit
// representations of D equals the number of link-paths between any pair at
// distance D — the redundant-number-representation view [13] agrees with
// the state-model view.
func TestRepresentationsMatchPathCount(t *testing.T) {
	for _, N := range []int{4, 8, 16} {
		p := topology.MustParams(N)
		for D := 0; D < N; D++ {
			reps := Representations(p, D)
			if got := CountRepresentations(p, D); got != len(reps) {
				t.Errorf("N=%d D=%d: CountRepresentations=%d, enumerated %d", N, D, got, len(reps))
			}
			for s := 0; s < N; s++ {
				d := p.Mod(s + D)
				links, _ := paths.CountPaths(p, s, d)
				if links != len(reps) {
					t.Errorf("N=%d s=%d d=%d (D=%d): %d paths vs %d representations",
						N, s, d, D, links, len(reps))
				}
			}
		}
	}
}

// TestRepresentationsAreDistinctPaths: distinct representations route along
// distinct link-paths.
func TestRepresentationsAreDistinctPaths(t *testing.T) {
	p := topology.MustParams(16)
	for D := 0; D < 16; D++ {
		seen := map[string]bool{}
		for _, g := range Representations(p, D) {
			pa, err := PathFromDigits(p, 3, g)
			if err != nil {
				t.Fatalf("D=%d digits %v: %v", D, g, err)
			}
			if pa.Destination() != p.Mod(3+D) {
				t.Fatalf("D=%d digits %v: wrong destination %d", D, g, pa.Destination())
			}
			key := g.String()
			if seen[key] {
				t.Fatalf("duplicate representation %q", key)
			}
			seen[key] = true
		}
	}
}

func TestRouteDistanceStaticDeliversEverywhere(t *testing.T) {
	for _, N := range []int{4, 8, 32} {
		p := topology.MustParams(N)
		for s := 0; s < N; s++ {
			for d := 0; d < N; d++ {
				pa := RouteDistanceStatic(p, s, d)
				if pa.Destination() != d {
					t.Fatalf("N=%d s=%d d=%d: delivered to %d", N, s, d, pa.Destination())
				}
			}
		}
	}
}

func TestRouteLeeLeeDeliversEverywhere(t *testing.T) {
	for _, N := range []int{8, 16} {
		p := topology.MustParams(N)
		for s := 0; s < N; s++ {
			for d := 0; d < N; d++ {
				pa := RouteLeeLee(p, s, d)
				if pa.Destination() != d {
					t.Fatalf("N=%d s=%d d=%d: delivered to %d", N, s, d, pa.Destination())
				}
			}
		}
	}
}

func TestTwosComplementRemaining(t *testing.T) {
	p := topology.MustParams(16)
	var ops OpCounter
	// tag 0b0110 (6), complement from stage 1: bits 1..3 of 6 are 011
	// (value 3 in the field); two's complement of the 3-bit field is 101.
	got := TwosComplementRemaining(p, 0b0110, 1, &ops)
	if got != 0b1010 {
		t.Errorf("TwosComplementRemaining = %#b, want 0b1010", got)
	}
	if ops.BitOps != 3 {
		t.Errorf("BitOps = %d, want 3 (O(n-i) cost)", ops.BitOps)
	}
	// Value identity: field(i..n-1) of result = 2^{n-i} - field of input.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		tag := uint64(rng.Intn(16))
		i := rng.Intn(4)
		out := TwosComplementRemaining(p, tag, i, nil)
		fieldIn := (tag >> uint(i)) & ((1 << uint(4-i)) - 1)
		fieldOut := (out >> uint(i)) & ((1 << uint(4-i)) - 1)
		if (fieldIn+fieldOut)&((1<<uint(4-i))-1) != 0 {
			t.Fatalf("tag=%#b i=%d: fields %#b + %#b != 0 mod 2^%d", tag, i, fieldIn, fieldOut, 4-i)
		}
		if out&((1<<uint(i))-1) != tag&((1<<uint(i))-1) {
			t.Fatalf("low bits disturbed")
		}
	}
}

func TestRouteMSClearNetwork(t *testing.T) {
	blk := blockage.NewSet(p8)
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			res, err := RouteMS(p8, s, d, blk)
			if err != nil {
				t.Fatalf("RouteMS(%d,%d): %v", s, d, err)
			}
			if res.Path.Destination() != d || res.Reroutes != 0 {
				t.Fatalf("RouteMS(%d,%d) = %v reroutes=%d", s, d, res.Path, res.Reroutes)
			}
		}
	}
}

func TestRouteMSReroutesNonstraight(t *testing.T) {
	blk := blockage.NewSet(p8)
	// s=0, d=1: D=1, positive dominant, stage 0 takes +1. Block it.
	blk.Block(topology.Link{Stage: 0, From: 0, Kind: topology.Plus})
	res, err := RouteMS(p8, 0, 1, blk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reroutes != 1 {
		t.Errorf("Reroutes = %d, want 1", res.Reroutes)
	}
	if res.Ops.BitOps != 3 {
		t.Errorf("BitOps = %d, want n=3 (the O(log N) cost)", res.Ops.BitOps)
	}
	if res.Path.Destination() != 1 {
		t.Errorf("delivered to %d", res.Path.Destination())
	}
	if res.Path.Links[0].Kind != topology.Minus {
		t.Errorf("stage 0 link %v, want Minus", res.Path.Links[0])
	}
	if got, hit := res.Path.FirstBlocked(blk); hit {
		t.Errorf("path blocked at stage %d", got)
	}
}

func TestRouteMSStraightFatal(t *testing.T) {
	blk := blockage.NewSet(p8)
	// s=1, d=0: D=7, starts negative dominant (magnitude 1): stage 0 takes
	// -1 to switch 0, then straight. Block the straight at stage 1.
	blk.Block(topology.Link{Stage: 1, From: 0, Kind: topology.Straight})
	if _, err := RouteMS(p8, 1, 0, blk); err == nil {
		t.Error("RouteMS survived a straight blockage")
	}
}

func TestRouteMSDoubleNonstraightFatal(t *testing.T) {
	blk := blockage.NewSet(p8)
	blk.Block(topology.Link{Stage: 0, From: 0, Kind: topology.Plus})
	blk.Block(topology.Link{Stage: 0, From: 0, Kind: topology.Minus})
	if _, err := RouteMS(p8, 0, 1, blk); err == nil {
		t.Error("RouteMS survived a double nonstraight blockage")
	}
}

func TestRouteMSRandomBlockagesDeliverOrFail(t *testing.T) {
	// Whenever RouteMS succeeds, the path must be valid, blockage-free and
	// end at d.
	p := topology.MustParams(32)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		blk := blockage.NewSet(p)
		blk.RandomLinks(rng, rng.Intn(40))
		s, d := rng.Intn(32), rng.Intn(32)
		res, err := RouteMS(p, s, d, blk)
		if err != nil {
			continue
		}
		if res.Path.Destination() != d {
			t.Fatalf("delivered to %d, want %d", res.Path.Destination(), d)
		}
		if stage, hit := res.Path.FirstBlocked(blk); hit {
			t.Fatalf("blocked at stage %d", stage)
		}
		if err := res.Path.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRouteMSLookaheadClearNetwork(t *testing.T) {
	blk := blockage.NewSet(p8)
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			res, err := RouteMSLookahead(p8, s, d, blk)
			if err != nil {
				t.Fatalf("RouteMSLookahead(%d,%d): %v", s, d, err)
			}
			if res.Path.Destination() != d {
				t.Fatalf("delivered to %d", res.Path.Destination())
			}
		}
	}
}

func TestRouteMSLookaheadAvoidsStraightFault(t *testing.T) {
	// s=1, d=0, N=8: negative-dominant route is 1 -> 0 -> 0 -> 0. Block the
	// straight (0∈S_1, 0∈S_2): the plain scheme dies, the look-ahead scheme
	// sees it one stage early (at stage... the divergence is at stage 0) —
	// one stage ahead of stage 0 is stage 1, so look-ahead diverts at stage
	// 0 to switch 2 and survives.
	blk := blockage.NewSet(p8)
	blk.Block(topology.Link{Stage: 1, From: 0, Kind: topology.Straight})
	if _, err := RouteMS(p8, 1, 0, blk); err == nil {
		t.Fatal("plain MS should die on this fault")
	}
	res, err := RouteMSLookahead(p8, 1, 0, blk)
	if err != nil {
		t.Fatalf("lookahead failed: %v", err)
	}
	if res.Path.Destination() != 0 {
		t.Errorf("delivered to %d", res.Path.Destination())
	}
	if _, hit := res.Path.FirstBlocked(blk); hit {
		t.Error("lookahead path blocked")
	}
}

func TestRouteMSLookaheadStillLimited(t *testing.T) {
	// A straight fault two stages beyond the last divergence defeats
	// single-stage look-ahead (the limitation Corollary 4.2's k-stage
	// backtracking removes). s=1, d=0: divergence only at stage 0; block
	// BOTH stage-2 straights reachable after the divergence... there is
	// only one relevant: paths 1,0,0,0 / 1,2,0,0 / 1,2,4,0. Block
	// (0∈S_2,0∈S_3) — kills paths 1 and 2 — and both nonstraights of 4∈S_2
	// are fine, so lookahead CAN survive via 1,2,4,0. Instead block
	// (0∈S_2, 0∈S_3) and (2∈S_1, 4∈S_2): now only path 1,0,0,0 ... wait it
	// uses (0∈S_2,0∈S_3) too. Only 1,2,4,0 avoids it, which needs
	// (2∈S_1,4∈S_2). With both blocked no path exists at all; every scheme
	// must fail. Verify lookahead reports failure rather than mis-routing.
	blk := blockage.NewSet(p8)
	blk.Block(topology.Link{Stage: 2, From: 0, Kind: topology.Straight})
	blk.Block(topology.Link{Stage: 1, From: 2, Kind: topology.Plus})
	if _, err := RouteMSLookahead(p8, 1, 0, blk); err == nil {
		t.Error("lookahead succeeded where no path exists")
	}
}

func TestRouteMSLookaheadRandomSound(t *testing.T) {
	p := topology.MustParams(16)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 500; trial++ {
		blk := blockage.NewSet(p)
		blk.RandomLinks(rng, rng.Intn(30))
		s, d := rng.Intn(16), rng.Intn(16)
		res, err := RouteMSLookahead(p, s, d, blk)
		if err != nil {
			continue
		}
		if res.Path.Destination() != d {
			t.Fatalf("delivered to %d, want %d", res.Path.Destination(), d)
		}
		if stage, hit := res.Path.FirstBlocked(blk); hit {
			t.Fatalf("blocked at stage %d", stage)
		}
	}
}

func TestDigitsStringInvalid(t *testing.T) {
	g := Digits{0, 2, -1}
	if g.String() != "0?-" {
		t.Errorf("String = %q", g.String())
	}
}
