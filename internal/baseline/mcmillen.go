package baseline

import (
	"fmt"

	"iadm/internal/blockage"
	"iadm/internal/core"
	"iadm/internal/topology"
)

// OpCounter tallies the elementary bit/word operations a routing-hardware
// model performs, so the paper's complexity comparison (O(1) state-bit
// complement vs O(log N) two's-complement recomputation) can be measured.
type OpCounter struct {
	BitOps int // single-bit examinations/updates
}

// TwosComplementRemaining recomputes the remaining distance tag when the
// McMillen-Siegel scheme [9] switches dominance at stage i: the bits i..n-1
// of the tag are replaced by the two's complement of the remaining
// magnitude. The loop runs over all n-i remaining bit positions — the
// O(log N) time x space cost the paper's schemes avoid. ops, if non-nil,
// accumulates the bit operations performed.
func TwosComplementRemaining(p topology.Params, tag uint64, i int, ops *OpCounter) uint64 {
	n := p.Stages()
	// Invert bits i..n-1, then add 2^i with ripple carry: the textbook
	// two's-complement circuit a switch would implement.
	carry := uint64(1)
	out := tag
	for b := i; b < n; b++ {
		bit := (tag >> uint(b)) & 1
		inv := bit ^ 1
		sum := inv + carry
		if sum&1 == 1 {
			out |= 1 << uint(b)
		} else {
			out &^= 1 << uint(b)
		}
		carry = sum >> 1
		if ops != nil {
			ops.BitOps++
		}
	}
	return out
}

// MSResult reports a McMillen-Siegel routing outcome.
type MSResult struct {
	Path     core.Path
	Reroutes int       // number of dominance switches performed
	Ops      OpCounter // bit operations spent on rerouting computations
}

// RouteMS routes s to d with the McMillen-Siegel dynamic rerouting
// technique [9]: the message carries the n-bit magnitude of the remaining
// distance plus a dominance flag. Bit i of the magnitude selects the
// dominant-sign nonstraight link at stage i (or the straight link when 0);
// if the selected nonstraight link is blocked, the switch recomputes the
// remaining tag as its two's complement (an O(log N) ripple operation) and
// flips dominance, diverting to the oppositely signed link.
//
// Straight-link blockages and double nonstraight blockages are fatal, as in
// the original scheme.
func RouteMS(p topology.Params, s, d int, blk *blockage.Set) (MSResult, error) {
	res := MSResult{}
	n := p.Stages()
	positive := true
	D := Distance(p, s, d)
	tag := uint64(D) // magnitude of remaining distance under current dominance
	if D != 0 && D > p.Size()/2 {
		// Start with the shorter representation, as the scheme's senders do.
		positive = false
		tag = uint64(p.Mod(-D))
	}
	links := make([]topology.Link, n)
	j := s
	for i := 0; i < n; i++ {
		bit := (tag >> uint(i)) & 1
		var l topology.Link
		if bit == 0 {
			l = topology.Link{Stage: i, From: j, Kind: topology.Straight}
			if blk.Blocked(l) {
				return res, fmt.Errorf("baseline: MS routing: straight link blockage %v is fatal", l)
			}
		} else {
			kind := topology.Plus
			if !positive {
				kind = topology.Minus
			}
			l = topology.Link{Stage: i, From: j, Kind: kind}
			if blk.Blocked(l) {
				// Dynamic rerouting: two's complement the remaining tag and
				// flip dominance (technique 1 of [9]).
				tag = TwosComplementRemaining(p, tag, i, &res.Ops)
				positive = !positive
				res.Reroutes++
				l = topology.Link{Stage: i, From: j, Kind: kind.Opposite()}
				if blk.Blocked(l) {
					return res, fmt.Errorf("baseline: MS routing: double nonstraight blockage at %d∈S_%d", j, i)
				}
			}
		}
		links[i] = l
		j = l.To(p)
	}
	pa, err := core.NewPath(p, s, links)
	if err != nil {
		return res, fmt.Errorf("baseline: MS routing built invalid path: %v", err)
	}
	if pa.Destination() != d {
		return res, fmt.Errorf("baseline: MS routing delivered to %d, want %d", pa.Destination(), d)
	}
	res.Path = pa
	return res, nil
}

// RouteMSLookahead extends RouteMS with the single-stage look-ahead of
// [10]: when stage i offers a sign choice (both nonstraight links free), it
// inspects the link the tag will demand at stage i+1 under each choice and
// prefers a choice whose next link is unblocked. This avoids the straight
// link faults that are avoidable with one stage of warning; deeper faults
// remain fatal, which is exactly the limitation the paper's universal
// REROUTE algorithm removes.
func RouteMSLookahead(p topology.Params, s, d int, blk *blockage.Set) (MSResult, error) {
	res := MSResult{}
	n := p.Stages()
	positive := true
	D := Distance(p, s, d)
	tag := uint64(D)
	if D != 0 && D > p.Size()/2 {
		positive = false
		tag = uint64(p.Mod(-D))
	}
	links := make([]topology.Link, n)
	j := s

	// nextLink computes the link the scheme would demand at stage i+1 from
	// switch jj with remaining tag tt and dominance pos.
	nextLink := func(i int, jj int, tt uint64, pos bool) (topology.Link, bool) {
		if i+1 >= n {
			return topology.Link{}, false
		}
		bit := (tt >> uint(i+1)) & 1
		kind := topology.Straight
		if bit == 1 {
			kind = topology.Plus
			if !pos {
				kind = topology.Minus
			}
		}
		return topology.Link{Stage: i + 1, From: jj, Kind: kind}, true
	}

	for i := 0; i < n; i++ {
		bit := (tag >> uint(i)) & 1
		var l topology.Link
		if bit == 0 {
			l = topology.Link{Stage: i, From: j, Kind: topology.Straight}
			if blk.Blocked(l) {
				return res, fmt.Errorf("baseline: MS lookahead: straight link blockage %v is fatal", l)
			}
		} else {
			kind := topology.Plus
			if !positive {
				kind = topology.Minus
			}
			cur := topology.Link{Stage: i, From: j, Kind: kind}
			altTag := TwosComplementRemaining(p, tag, i, &res.Ops)
			alt := topology.Link{Stage: i, From: j, Kind: kind.Opposite()}

			curOK := !blk.Blocked(cur)
			altOK := !blk.Blocked(alt)
			// One-stage look-ahead: is the follow-up link clear?
			curNextOK, altNextOK := true, true
			if nl, ok := nextLink(i, cur.To(p), tag, positive); ok {
				curNextOK = !blk.Blocked(nl)
			}
			if nl, ok := nextLink(i, alt.To(p), altTag, !positive); ok {
				altNextOK = !blk.Blocked(nl)
			}
			switch {
			case curOK && curNextOK:
				l = cur
			case altOK && altNextOK:
				l, tag, positive = alt, altTag, !positive
				res.Reroutes++
			case curOK:
				l = cur
			case altOK:
				l, tag, positive = alt, altTag, !positive
				res.Reroutes++
			default:
				return res, fmt.Errorf("baseline: MS lookahead: double nonstraight blockage at %d∈S_%d", j, i)
			}
		}
		links[i] = l
		j = l.To(p)
	}
	pa, err := core.NewPath(p, s, links)
	if err != nil {
		return res, fmt.Errorf("baseline: MS lookahead built invalid path: %v", err)
	}
	if pa.Destination() != d {
		return res, fmt.Errorf("baseline: MS lookahead delivered to %d, want %d", pa.Destination(), d)
	}
	res.Path = pa
	return res, nil
}
