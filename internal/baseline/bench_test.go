package baseline

import (
	"fmt"
	"math/rand"
	"testing"

	"iadm/internal/blockage"
	"iadm/internal/topology"
)

func BenchmarkRouteDistanceStatic(b *testing.B) {
	for _, N := range []int{8, 256, 4096} {
		p := topology.MustParams(N)
		b.Run(fmt.Sprintf("N=%d", N), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				RouteDistanceStatic(p, i%N, (i*7)%N)
			}
		})
	}
}

func BenchmarkRouteMSWithBlockages(b *testing.B) {
	p := topology.MustParams(256)
	rng := rand.New(rand.NewSource(1))
	blk := blockage.NewSet(p)
	blk.RandomNonstraight(rng, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = RouteMS(p, i%256, (i*31)%256, blk)
	}
}

func BenchmarkRouteMSLookahead(b *testing.B) {
	p := topology.MustParams(256)
	rng := rand.New(rand.NewSource(2))
	blk := blockage.NewSet(p)
	blk.RandomLinks(rng, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = RouteMSLookahead(p, i%256, (i*31)%256, blk)
	}
}

func BenchmarkRepresentationsWorstCase(b *testing.B) {
	for _, N := range []int{8, 64, 1024} {
		p := topology.MustParams(N)
		b.Run(fmt.Sprintf("N=%d", N), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Representations(p, N-1)
			}
		})
	}
}

func BenchmarkCountRepresentations(b *testing.B) {
	p := topology.MustParams(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountRepresentations(p, i%4096)
	}
}
