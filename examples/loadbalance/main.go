// Load balancing: the paper's SSDT scheme lets a switch assign each
// message to whichever nonstraight buffer is emptier (both reach the same
// destinations, Theorem 3.2). This example sweeps the offered load on a
// cycle-level packet simulator and compares that adaptive policy against
// static state-C routing and random state selection.
//
// Run with: go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"

	"iadm/internal/simulator"
)

func main() {
	const N = 32
	fmt.Printf("IADM packet simulator, N=%d, uniform traffic, queue capacity 4\n\n", N)
	fmt.Printf("%-6s %-14s %-11s %-10s %-9s %-10s\n", "load", "policy", "throughput", "mean lat", "p99 lat", "max queue")
	for _, load := range []float64{0.2, 0.5, 0.8} {
		for _, pol := range []simulator.Policy{simulator.StaticC, simulator.RandomState, simulator.AdaptiveSSDT} {
			m, err := simulator.Run(simulator.Config{
				N: N, Policy: pol, Load: load, QueueCap: 4,
				Cycles: 5000, Warmup: 500, Seed: 42,
				Traffic: simulator.Uniform,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6.1f %-14s %-11.4f %-10.2f %-9.0f %-10d\n",
				load, pol, m.Throughput, m.Latency.Mean(), m.Latency.Percentile(99), m.MaxQueue)
		}
		fmt.Println()
	}

	fmt.Println("hotspot traffic (30% of packets to output 0), load 0.5:")
	fmt.Printf("%-14s %-11s %-10s %-9s %-10s %-8s\n", "policy", "throughput", "mean lat", "p99 lat", "max queue", "refused")
	for _, pol := range []simulator.Policy{simulator.StaticC, simulator.RandomState, simulator.AdaptiveSSDT} {
		m, err := simulator.Run(simulator.Config{
			N: N, Policy: pol, Load: 0.5, QueueCap: 4,
			Cycles: 5000, Warmup: 500, Seed: 42,
			Traffic: simulator.Hotspot, HotspotDest: 0, HotspotFrac: 0.3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %-11.4f %-10.2f %-9.0f %-10d %-8d\n",
			pol, m.Throughput, m.Latency.Mean(), m.Latency.Percentile(99), m.MaxQueue, m.Refused)
	}
}
