// Fault tolerance: inject random link faults into an IADM network and
// compare how much connectivity each routing scheme preserves — the
// paper's schemes (SSDT, TSDT + universal REROUTE) against the prior
// distance-tag schemes it improves upon.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"fmt"
	"math/rand"

	"iadm/internal/baseline"
	"iadm/internal/blockage"
	"iadm/internal/core"
	"iadm/internal/paths"
	"iadm/internal/topology"
)

func main() {
	const N = 32
	p := topology.MustParams(N)
	rng := rand.New(rand.NewSource(2))

	fmt.Printf("IADM network N=%d: fraction of (s,d) pairs still routable\n\n", N)
	fmt.Printf("%-8s %-10s %-10s %-12s %-14s %-8s %-14s %-8s\n",
		"faults", "static", "Lee-Lee", "MS-reroute", "MS-lookahead", "SSDT", "TSDT+REROUTE", "oracle")

	for _, nf := range []int{1, 4, 16, 32, 64} {
		var ok [7]int
		const trials = 20
		total := 0
		for t := 0; t < trials; t++ {
			blk := blockage.NewSet(p)
			blk.RandomLinks(rng, nf)
			for s := 0; s < N; s++ {
				for d := 0; d < N; d++ {
					total++
					if _, hit := baseline.RouteDistanceStatic(p, s, d).FirstBlocked(blk); !hit {
						ok[0]++
					}
					if _, hit := baseline.RouteLeeLee(p, s, d).FirstBlocked(blk); !hit {
						ok[1]++
					}
					if _, err := baseline.RouteMS(p, s, d, blk); err == nil {
						ok[2]++
					}
					if _, err := baseline.RouteMSLookahead(p, s, d, blk); err == nil {
						ok[3]++
					}
					ns := core.NewNetworkState(p)
					if _, err := core.RouteSSDT(p, s, d, ns, blk); err == nil {
						ok[4]++
					}
					if _, _, err := core.Reroute(p, blk, s, core.MustTag(p, d)); err == nil {
						ok[5]++
					}
					if paths.Exists(p, s, d, blk) {
						ok[6]++
					}
				}
			}
		}
		fmt.Printf("%-8d", nf)
		for i := 0; i < 7; i++ {
			fmt.Printf(" %-9.1f%%", 100*float64(ok[i])/float64(total))
			if i == 3 || i == 5 {
				fmt.Print(" ")
			}
		}
		fmt.Println()
	}
	fmt.Println("\nTSDT+REROUTE always matches the oracle: the universal rerouting")
	fmt.Println("algorithm finds a blockage-free path whenever one exists (Section 5).")
}
