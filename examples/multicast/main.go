// Multicast: the paper's switches can connect one input to "one or more"
// outputs; this example uses those broadcast states to deliver one message
// to many destinations along a prefix-sharing tree, and compares the link
// cost against separate unicast messages.
//
// Run with: go run ./examples/multicast
package main

import (
	"fmt"
	"log"

	"iadm/internal/multicast"
	"iadm/internal/topology"
)

func main() {
	p := topology.MustParams(16)

	// A 4-destination multicast from source 5.
	dests := []int{0, 4, 8, 12} // shared low bits: fork late... here they
	// share bits 0..1 (=00) and differ in bits 2..3: forks at stages 2, 3.
	tree, err := multicast.Route(p, 5, dests, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multicast 5 -> %v (N=16)\n", dests)
	for i, links := range tree.Stages {
		fmt.Printf("  stage %d: %d link(s):", i, len(links))
		for _, l := range links {
			fmt.Printf(" %s", l.StringIn(p))
		}
		fmt.Println()
	}
	fmt.Printf("tree links: %d, separate unicasts would use: %d\n\n",
		tree.LinkCount(), multicast.UnicastLinkTotal(p, 5, dests))

	// Full broadcast.
	b, err := multicast.Broadcast(p, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broadcast from 0: %d links (unicasts: %d); per-stage fan-out:",
		b.LinkCount(), multicast.UnicastLinkTotal(p, 0, seq(16)))
	for _, links := range b.Stages {
		fmt.Printf(" %d", len(links))
	}
	fmt.Println()
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
