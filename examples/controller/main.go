// Network controller: the paper's Section 5 assumes "a network controller
// responsible for collecting [blockage] information and maintaining a
// global map of blockages, which is accessible to every sender". This
// example runs that controller with many concurrent senders while links
// fail and get repaired, and reports cache behaviour and connectivity.
//
// Run with: go run ./examples/controller
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	"iadm/internal/controller"
	"iadm/internal/core"
	"iadm/internal/topology"
)

func main() {
	const N = 32
	ctl, err := controller.New(N)
	if err != nil {
		log.Fatal(err)
	}

	// Seed some faults.
	faults := []topology.Link{
		{Stage: 0, From: 3, Kind: topology.Plus},
		{Stage: 2, From: 17, Kind: topology.Minus},
		{Stage: 4, From: 8, Kind: topology.Plus},
	}
	for _, l := range faults {
		ctl.ReportFault(l)
	}
	fmt.Printf("initial faults: %v\n", ctl.Faults())
	fmt.Printf("connectivity: %.4f\n\n", ctl.Connectivity())

	// 16 concurrent senders route random messages; one goroutine churns
	// faults and repairs.
	var delivered, unroutable atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 200; i++ {
			l := faults[rng.Intn(len(faults))]
			if rng.Intn(2) == 0 {
				ctl.ReportFault(l)
			} else {
				ctl.ReportRepair(l)
			}
		}
		close(stop)
	}()

	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s, d := rng.Intn(N), rng.Intn(N)
				tag, err := ctl.RouteTag(s, d)
				if err != nil {
					if errors.Is(err, core.ErrNoPath) {
						unroutable.Add(1)
						continue
					}
					log.Fatal(err)
				}
				if tag.Follow(ctl.Params(), s).Destination() != d {
					log.Fatalf("misrouted %d -> %d", s, d)
				}
				delivered.Add(1)
			}
		}(int64(g))
	}
	wg.Wait()

	st := ctl.Stats()
	fmt.Printf("routed %d messages concurrently (%d momentarily unroutable)\n",
		delivered.Load(), unroutable.Load())
	fmt.Printf("tag cache: %d hits, %d computed, %d failures (hit rate %.1f%%)\n",
		st.Hits, st.Misses, st.Fails, 100*st.HitRate())
	fmt.Printf("final faults: %v\nfinal connectivity: %.4f\n", ctl.Faults(), ctl.Connectivity())
}
