// Quickstart: build an IADM network, route a message with the paper's
// destination tag schemes, and reroute around a blocked link.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"iadm/internal/blockage"
	"iadm/internal/core"
	"iadm/internal/render"
	"iadm/internal/topology"
)

func main() {
	// An IADM network has N inputs/outputs and log2(N) switching stages.
	p, err := topology.NewParams(8)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Plain destination-tag routing (Theorem 3.1): the n-bit address of
	// the destination is the tag; the state of the network only selects
	// which of the redundant paths is used.
	s, d := 1, 0
	tag := core.MustTag(p, d)
	path := tag.Follow(p, s)
	fmt.Println("destination-tag route:", render.PathLine(path))

	// 2. SSDT: if a nonstraight link is blocked, the switch flips its own
	// state and uses the oppositely signed spare link. The sender never
	// knows (transparent rerouting, O(1)).
	blk := blockage.NewSet(p)
	blk.Block(topology.Link{Stage: 0, From: 1, Kind: topology.Minus})
	ns := core.NewNetworkState(p)
	res, err := core.RouteSSDT(p, s, d, ns, blk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SSDT self-repaired route:", render.PathLine(res.Path))
	fmt.Println("switch states flipped at stages:", res.Flipped)

	// 3. TSDT + universal REROUTE: with a global blockage map, the sender
	// computes a 2n-bit tag avoiding any combination of blockages — or
	// learns that no path exists.
	blk.Block(topology.Link{Stage: 1, From: 2, Kind: topology.Minus})
	blk.Block(topology.Link{Stage: 2, From: 4, Kind: topology.Minus})
	newTag, newPath, err := core.Reroute(p, blk, s, tag)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("REROUTE tag %s: %s\n", newTag, render.PathLine(newPath))

	// 4. The routing trace shows the per-switch decisions (destination bit
	// + state bit, Lemma A1.1).
	fmt.Print(render.TagTrace(p, s, newTag))
}
