// Cube-family tour: the five classic cube-type networks the paper builds
// on, their topological equivalence, and the reconfiguration function that
// transfers permutations between members.
//
// Run with: go run ./examples/cubefamily
package main

import (
	"fmt"

	"iadm/internal/cubefamily"
	"iadm/internal/subgraph"
)

func main() {
	const N = 8
	base := cubefamily.MustNew(cubefamily.GeneralizedCube, N)

	fmt.Println("the cube-type network family (Section 1), N=8:")
	for _, kind := range cubefamily.Kinds() {
		nw := cubefamily.MustNew(kind, N)
		lines, tag, err := nw.Route(5, 2)
		if err != nil {
			panic(err)
		}
		iso := subgraph.Isomorphic(nw.Layered(), base.Layered())
		fmt.Printf("  %-17s route 5→2: lines %v, tag %v, iso-to-GC %v\n", kind, lines, tag, iso)
	}

	// Admissibility differs even though topology agrees; the
	// reconfiguration function of [21] bridges the gap.
	fmt.Println("\npermutation transfer (ICube → Generalized Cube via bit-reversal conjugation):")
	exch := make([]int, N)
	for x := range exch {
		exch[x] = x ^ 4 // exchange the MSB
	}
	ic := cubefamily.MustNew(cubefamily.ICube, N)
	gc := base
	re := cubefamily.ReconfigureICubeToGC(exch)
	fmt.Printf("  exchange-MSB:   ICube-admissible=%v  GC-admissible=%v\n",
		ic.Admissible(exch), gc.Admissible(exch))
	fmt.Printf("  reconfigured:   GC-admissible=%v (perm %v)\n", gc.Admissible(re), re)
}
