// Dynamic rerouting: the paper notes (Section 4) that rerouting can be
// computed by the sender from a global blockage map, or dynamically by the
// switches detecting blocked ports and signalling backwards. This example
// runs both on the same fault scenarios and reports the price of in-network
// discovery: probed links, physical backtrack hops, and replans.
//
// Run with: go run ./examples/dynamicrerouting
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"iadm/internal/blockage"
	"iadm/internal/core"
	"iadm/internal/render"
	"iadm/internal/topology"
)

func main() {
	const N = 16
	p := topology.MustParams(N)
	rng := rand.New(rand.NewSource(17))

	// A single scenario, narrated.
	// The default 1->0 route runs 1,0,0,... Blocking the stage-1 straight
	// link forces a physical backtrack to stage 0; blocking the -2^1 link
	// of the diverted route forces a second discovery.
	blk := blockage.NewSet(p)
	blk.Block(topology.Link{Stage: 1, From: 0, Kind: topology.Straight})
	blk.Block(topology.Link{Stage: 1, From: 2, Kind: topology.Minus})
	fmt.Printf("blocked: %s\n\n", blk)

	fmt.Println("sender-computed (global map):")
	tag, path, err := core.Reroute(p, blk, 1, core.MustTag(p, 0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  tag %s -> %s\n\n", tag, render.PathLine(path))

	fmt.Println("dynamic (in-network discovery):")
	res, err := core.DynamicReroute(p, blk, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  tag %s -> %s\n", res.Tag, render.PathLine(res.Path))
	fmt.Printf("  probes=%d backtrackHops=%d replans=%d\n\n", res.Probes, res.BacktrackHops, res.Replans)

	// Aggregate comparison over random fault sets.
	fmt.Println("aggregate over 2000 random messages, 12 random blocked links each:")
	var probes, hops, replans, delivered, failed int
	for trial := 0; trial < 2000; trial++ {
		b := blockage.NewSet(p)
		b.RandomLinks(rng, 12)
		s, d := rng.Intn(N), rng.Intn(N)
		r, err := core.DynamicReroute(p, b, s, d)
		if err != nil {
			if !errors.Is(err, core.ErrNoPath) {
				log.Fatal(err)
			}
			failed++
			continue
		}
		delivered++
		probes += r.Probes
		hops += r.BacktrackHops
		replans += r.Replans
	}
	fmt.Printf("  delivered %d, no-path %d\n", delivered, failed)
	fmt.Printf("  mean probes %.3f, mean backtrack hops %.3f, mean replans %.3f\n",
		float64(probes)/float64(delivered), float64(hops)/float64(delivered), float64(replans)/float64(delivered))
	fmt.Println("\ndynamic rerouting succeeds exactly when the global algorithm does;")
	fmt.Println("the discovery overhead above is what the global blockage map buys.")
}
