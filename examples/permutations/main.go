// Permutation routing: operate the IADM network as one of its cube
// subgraphs (Theorem 6.1) to pass cube-admissible permutations in a single
// conflict-free pass, and reconfigure to a different cube subgraph when
// nonstraight links fail (Section 6).
//
// Run with: go run ./examples/permutations
package main

import (
	"fmt"
	"log"
	"math/rand"

	"iadm/internal/blockage"
	"iadm/internal/icube"
	"iadm/internal/permroute"
	"iadm/internal/render"
	"iadm/internal/subgraph"
	"iadm/internal/topology"
)

func main() {
	const N = 8
	p := topology.MustParams(N)

	// 1. Admissibility on the embedded ICube network (all switches in
	// state C).
	fmt.Println("cube admissibility of classic permutations (N=8):")
	for _, f := range []struct {
		name string
		perm icube.Perm
	}{
		{"identity", icube.Identity(N)},
		{"shift +1", icube.Shift(N, 1)},
		{"exchange bit 1", icube.Exchange(N, 1)},
		{"bit complement", icube.BitComplement(N)},
		{"bit reverse", icube.BitReverse(N)},
	} {
		fmt.Printf("  %-16s %v admissible=%v\n", f.name, f.perm, icube.Admissible(p, f.perm))
	}

	// 2. Theorem 6.1: the cube subgraph family. Print the Figure 8 member.
	fmt.Println("\ncube subgraph for relabeling j -> j+1 (Figure 8):")
	fmt.Print(render.SubgraphTable(subgraph.RelabeledState(p, 1)))
	count, err := subgraph.VerifyTheorem61(N, []uint64{0, 0xFF})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified distinct cube subgraphs (Theorem 6.1): %.0f\n", count)

	// 3. Reconfiguration under faults: break an active nonstraight link and
	// pass the identity permutation via a different cube subgraph.
	faults := blockage.NewSet(p)
	faults.Block(topology.Link{Stage: 0, From: 0, Kind: topology.Plus})
	faults.Block(topology.Link{Stage: 1, From: 5, Kind: topology.Minus})
	fmt.Printf("\nfaulty links: %s\n", faults)
	res, paths, err := permroute.ReconfigureAndRoute(p, icube.Identity(N), faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identity permutation passes via relabeling x=%d (last-stage mask %#x):\n", res.X, res.LastMask)
	for s, pa := range paths {
		fmt.Printf("  %d -> %d: %s\n", s, pa.Destination(), render.PathLine(pa))
	}

	// 4. Random permutations: how many pass under some cube subgraph?
	rng := rand.New(rand.NewSource(4))
	pass, total := 0, 200
	for t := 0; t < total; t++ {
		perm := icube.Perm(rng.Perm(N))
		for x := 0; x < N; x++ {
			if permroute.Passes(p, perm, subgraph.RelabeledState(p, x)) {
				pass++
				break
			}
		}
	}
	fmt.Printf("\nrandom permutations passing under some relabeling: %d/%d\n", pass, total)
}
