// Package iadm's root benchmark suite: one BenchmarkE<k>_* per experiment
// row in DESIGN.md. `go test -bench=. -benchmem` regenerates every measured
// number recorded in EXPERIMENTS.md; the shapes to look for are the O(1)
// flatness of the paper's rerouting schemes versus the O(log N) growth of
// the baselines, and the linear-in-n cost of routing itself.
package iadm

import (
	"fmt"
	"math/rand"
	"testing"

	"iadm/internal/baseline"
	"iadm/internal/blockage"
	"iadm/internal/core"
	"iadm/internal/icube"
	"iadm/internal/paths"
	"iadm/internal/permroute"
	"iadm/internal/simulator"
	"iadm/internal/subgraph"
	"iadm/internal/topology"
)

var sizes = []int{8, 64, 1024, 4096}

// BenchmarkE1_BuildICube measures ICube construction + full link iteration.
func BenchmarkE1_BuildICube(b *testing.B) {
	for _, N := range sizes {
		b.Run(fmt.Sprintf("N=%d", N), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := topology.MustICube(N)
				count := 0
				c.Links(func(topology.Link) bool { count++; return true })
				if count != c.NumLinks() {
					b.Fatal("bad link count")
				}
			}
		})
	}
}

// BenchmarkE2_BuildIADM measures IADM construction + full link iteration.
func BenchmarkE2_BuildIADM(b *testing.B) {
	for _, N := range sizes {
		b.Run(fmt.Sprintf("N=%d", N), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := topology.MustIADM(N)
				count := 0
				m.Links(func(topology.Link) bool { count++; return true })
				if count != m.NumLinks() {
					b.Fatal("bad link count")
				}
			}
		})
	}
}

// BenchmarkE4_SSDTRoute measures one destination-tag route (O(n) walk).
// One nonstraight link per stage is blocked so the self-repair path (state
// flip + spare link) is actually exercised; RouteSSDT mutates the network
// state when it flips, so each iteration undoes its own flips — an O(n)
// operation that keeps the state identical at every iteration start
// without an O(N·n) full Reset inside the timed loop.
func BenchmarkE4_SSDTRoute(b *testing.B) {
	for _, N := range sizes {
		p := topology.MustParams(N)
		ns := core.NewNetworkState(p)
		blk := blockage.NewSet(p)
		for st := 0; st < p.Stages(); st++ {
			// A single nonstraight blockage per stage can always be
			// repaired around (Theorem 3.2), so no route ever fails.
			blk.Block(topology.Link{Stage: st, From: 0, Kind: topology.Plus})
		}
		b.Run(fmt.Sprintf("N=%d", N), func(b *testing.B) {
			ns.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.RouteSSDT(p, i%N, (i*7)%N, ns, blk)
				if err != nil {
					b.Fatal(err)
				}
				for _, st := range res.Flipped {
					ns.Flip(st, res.Path.Links[st].From)
				}
			}
		})
	}
}

// BenchmarkE5_EnumeratePaths measures full path enumeration for the
// Figure 7 workload (maximum-divergence pair).
func BenchmarkE5_EnumeratePaths(b *testing.B) {
	for _, N := range []int{8, 16, 32} {
		p := topology.MustParams(N)
		b.Run(fmt.Sprintf("N=%d", N), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := paths.Enumerate(p, 1, 0); len(got) == 0 {
					b.Fatal("no paths")
				}
			}
		})
	}
}

// BenchmarkE7_Corollary42 measures the k-stage backtrack tag computation
// (worst case k = n-1).
func BenchmarkE7_Corollary42(b *testing.B) {
	for _, N := range sizes {
		p := topology.MustParams(N)
		tag := core.MustTag(p, 0)
		path := tag.Follow(p, 1) // nonstraight at stage 0, straight above
		q := p.Stages() - 1
		b.Run(fmt.Sprintf("N=%d", N), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tag.RerouteBacktrack(path, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8_Reroute measures the universal REROUTE algorithm under a
// random 8-link blockage load.
func BenchmarkE8_Reroute(b *testing.B) {
	for _, N := range sizes {
		p := topology.MustParams(N)
		rng := rand.New(rand.NewSource(8))
		blk := blockage.NewSet(p)
		blk.RandomLinks(rng, 8)
		tag := core.MustTag(p, 0)
		b.Run(fmt.Sprintf("N=%d", N), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := core.Reroute(p, blk, i%N, tag)
				if err != nil && i == 0 {
					// FAIL outcomes are valid; just exercise the algorithm.
					continue
				}
			}
		})
	}
}

// BenchmarkE9_SSDTFlip: the O(1) rerouting action of the SSDT scheme — a
// single state flip. Must stay flat across N.
func BenchmarkE9_SSDTFlip(b *testing.B) {
	for _, N := range sizes {
		p := topology.MustParams(N)
		ns := core.NewNetworkState(p)
		b.Run(fmt.Sprintf("N=%d", N), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ns.Flip(0, i%N)
			}
		})
	}
}

// BenchmarkE9_Corollary41: the O(1) TSDT rerouting tag for a nonstraight
// blockage — one state-bit complement. Must stay flat across N.
func BenchmarkE9_Corollary41(b *testing.B) {
	for _, N := range sizes {
		p := topology.MustParams(N)
		tag := core.MustTag(p, 1)
		b.Run(fmt.Sprintf("N=%d", N), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tag = tag.RerouteNonstraight(i % p.Stages())
			}
		})
	}
}

// BenchmarkE9_TwosComplement: the O(log N) McMillen-Siegel rerouting tag
// recomputation. Must grow with N.
func BenchmarkE9_TwosComplement(b *testing.B) {
	for _, N := range sizes {
		p := topology.MustParams(N)
		b.Run(fmt.Sprintf("N=%d", N), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.TwosComplementRemaining(p, uint64(i)&uint64(N-1), 0, nil)
			}
		})
	}
}

// BenchmarkE9_ParkerAllPaths: the cost of the Parker-Raghavendra all-paths
// enumeration the paper calls "prohibitively large" for dynamic routing.
func BenchmarkE9_ParkerAllPaths(b *testing.B) {
	for _, N := range []int{8, 64, 1024} {
		p := topology.MustParams(N)
		D := N - 1 // worst case: maximum divergence
		b.Run(fmt.Sprintf("N=%d", N), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := baseline.Representations(p, D); len(got) == 0 {
					b.Fatal("no representations")
				}
			}
		})
	}
}

// BenchmarkE10_Subgraphs measures building one cube-subgraph network state
// plus its explicit isomorphism verification.
func BenchmarkE10_Subgraphs(b *testing.B) {
	for _, N := range []int{8, 64, 256} {
		p := topology.MustParams(N)
		b.Run(fmt.Sprintf("N=%d", N), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x := i % N
				ns := subgraph.RelabeledState(p, x)
				if err := subgraph.ExplicitIsoToICube(ns, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE11_Reconfigure measures the fault-avoiding cube-subgraph search
// under 4 random nonstraight faults.
func BenchmarkE11_Reconfigure(b *testing.B) {
	for _, N := range []int{8, 64, 256} {
		p := topology.MustParams(N)
		rng := rand.New(rand.NewSource(11))
		blk := blockage.NewSet(p)
		blk.RandomNonstraight(rng, 4)
		b.Run(fmt.Sprintf("N=%d", N), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				subgraph.FindFaultFreeCubeState(p, blk)
			}
		})
	}
}

// BenchmarkE12_Simulator measures simulation throughput (cycles/sec) at
// moderate load.
func BenchmarkE12_Simulator(b *testing.B) {
	for _, pol := range []simulator.Policy{simulator.StaticC, simulator.AdaptiveSSDT} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := simulator.Run(simulator.Config{
					N: 16, Policy: pol, Load: 0.5, QueueCap: 4,
					Cycles: 200, Warmup: 20, Seed: int64(i), Traffic: simulator.Uniform,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE13_FaultSweep measures one full-scheme comparison round (all
// pairs, one fault set).
func BenchmarkE13_FaultSweep(b *testing.B) {
	p := topology.MustParams(16)
	rng := rand.New(rand.NewSource(13))
	blk := blockage.NewSet(p)
	blk.RandomLinks(rng, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 16; s++ {
			for d := 0; d < 16; d++ {
				ns := core.NewNetworkState(p)
				_, _ = core.RouteSSDT(p, s, d, ns, blk)
				_, _, _ = core.Reroute(p, blk, s, core.MustTag(p, d))
				_, _ = baseline.RouteMS(p, s, d, blk)
			}
		}
	}
}

// BenchmarkE14_AllPaths compares the O(n) destination-tag route against
// full all-paths enumeration at N=1024 (the cost gap motivating
// destination tags).
func BenchmarkE14_AllPaths(b *testing.B) {
	p := topology.MustParams(1024)
	b.Run("destination-tag", func(b *testing.B) {
		tag := core.MustTag(p, 0)
		for i := 0; i < b.N; i++ {
			tag.Follow(p, i%1024)
		}
	})
	b.Run("count-representations", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.CountRepresentations(p, i%1024)
		}
	})
}

// BenchmarkE16_Permute measures permutation admissibility checking and
// reconfigured permutation routing.
func BenchmarkE16_Permute(b *testing.B) {
	for _, N := range []int{8, 64, 256} {
		p := topology.MustParams(N)
		perm := icube.Shift(N, 1)
		b.Run(fmt.Sprintf("admissible/N=%d", N), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !icube.Admissible(p, perm) {
					b.Fatal("shift should be admissible")
				}
			}
		})
	}
	p := topology.MustParams(8)
	blk := blockage.NewSet(p)
	blk.Block(topology.Link{Stage: 0, From: 0, Kind: topology.Plus})
	b.Run("reconfigure-route/N=8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := permroute.ReconfigureAndRoute(p, icube.Identity(8), blk); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE28_MultiPass measures the greedy multi-pass partition of a
// random permutation.
func BenchmarkE28_MultiPass(b *testing.B) {
	for _, N := range []int{8, 64, 256} {
		p := topology.MustParams(N)
		rng := rand.New(rand.NewSource(28))
		perm := icube.Perm(rng.Perm(N))
		b.Run(fmt.Sprintf("N=%d", N), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := permroute.MultiPass(p, perm, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
