// Command experiments runs the paper-reproduction experiment harness: one
// experiment per figure, theorem, algorithm and complexity claim of Rau,
// Fortes and Siegel's IADM state-model paper, as indexed in DESIGN.md.
//
// Usage:
//
//	experiments            # run everything
//	experiments -run E8    # run one experiment (comma-separate for more)
//	experiments -list      # list experiment ids and titles
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"iadm/internal/buildinfo"
	"iadm/internal/experiments"
	"iadm/internal/profiling"
)

func main() {
	runID := flag.String("run", "", "comma-separated experiment ids to run (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	intra := flag.Int("intra", 0, "worker goroutines inside each simulation run (0/1 = sequential; reports are bit-identical for every value)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version("experiments"))
		return
	}
	experiments.IntraWorkers = *intra
	err := profiling.WithProfiles(*cpuprofile, *memprofile, func() error {
		return run(os.Stdout, *runID, *list)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(w io.Writer, runID string, list bool) error {
	if list {
		for _, id := range experiments.IDs() {
			fmt.Fprintf(w, "%-4s %s\n", id, experiments.Title(id))
		}
		return nil
	}
	ids := experiments.IDs()
	if runID != "" {
		ids = strings.Split(runID, ",")
	}
	var firstErr error
	for _, id := range ids {
		id = strings.TrimSpace(id)
		res, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintf(w, "%s: FAILED: %v\n", id, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		fmt.Fprintf(w, "==== %s — %s ====\n%s\n", res.ID, res.Title, res.Body)
	}
	return firstErr
}
