package main

import (
	"strings"
	"testing"
)

func TestListMode(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "", true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"E1 ", "E8 ", "E27"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %q:\n%s", id, out)
		}
	}
	if strings.Contains(out, "====") {
		t.Error("list mode ran experiments")
	}
}

func TestRunSingle(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "E3", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "==== E3 —") {
		t.Errorf("missing E3 header:\n%s", sb.String())
	}
}

func TestRunMultiple(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "E3, E6", false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "==== E3 —") || !strings.Contains(out, "==== E6 —") {
		t.Errorf("missing headers:\n%s", out)
	}
}

func TestRunUnknown(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "E999", false); err == nil {
		t.Error("unknown experiment did not error")
	}
	if !strings.Contains(sb.String(), "FAILED") {
		t.Errorf("missing failure note:\n%s", sb.String())
	}
}
