// Command iadmload is a closed-loop load generator for iadmd: N worker
// goroutines hammer /route (uniform or zipf destination mix, configurable
// SSDT/TSDT split), optionally churning faults and repairs of random
// nonstraight links (the blockage class every scheme tolerates, so routes
// stay feasible), and report throughput plus latency percentiles from the
// repo's stats.Stream machinery alongside the server's own /metrics.
//
// Usage:
//
//	iadmload -addr 127.0.0.1:8080 [-workers 8] [-duration 2s]
//	         [-targets a:1,b:2] [-nets 0] [-churn-net NAME]
//	         [-tsdt 0.2] [-zipf 1.3] [-churn 0.01] [-batch 0]
//	         [-batch-mix 1,3,64,65,200] [-seed 1] [-check] [-min-ssdt-hit 0]
//	         [-overload] [-max-p99us 20000] [-max-shed 0.99] [-min-overload 0]
//
// -targets spreads the workers across several endpoints (workers are
// assigned round-robin; all endpoints must serve the same N) and the
// final report merges every endpoint's /metrics document into one
// cluster view — the percentile lines stay client-side and therefore
// already span all targets. -addr is shorthand for a single target.
//
// -nets spreads requests across K named networks ("p0".."p<K-1>" — the
// partitions of a fleet router, or lazily created networks of a
// multi-net iadmd). -churn-net confines fault/repair churn to one named
// network, so a smoke run can churn one partition while checking the
// others' caches never invalidate.
//
// -batch sends fixed-size /route/batch requests; -batch-mix cycles through
// a comma-separated list of sizes per iteration instead (sizes <= 1 go out
// as single /route calls), exercising the server's sliced-kernel fill at
// every remainder shape.
//
// With -check the exit status enforces the smoke contract: no transport
// errors, no non-200 route responses, no server-side 5xx, non-zero
// throughput, and an SSDT cache hit rate of at least -min-ssdt-hit; when
// any batching is requested, the server must also report sliced-kernel
// lanes used.
//
// -overload flips the contract for saturation rehearsals against a daemon
// running admission control: shed responses (429 or batch items with code
// "overload") become expected rather than fatal. The -check gate then
// demands the run actually overloaded the slow path (server sheds > 0,
// offered/admitted factor >= -min-overload), that the service never
// collapsed (successes > 0, shed fraction <= -max-shed, still zero 5xx),
// and that client p99 latency stayed under -max-p99us — sheds are
// fail-fast, so overload must not inflate the tail.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"iadm/internal/buildinfo"
	"iadm/internal/routesvc"
	"iadm/internal/stats"
)

type loadConfig struct {
	addr       string
	targets    string
	nets       int
	churnNet   string
	workers    int
	duration   time.Duration
	tsdtFrac   float64
	zipfS      float64
	churn      float64
	batch      int
	batchMix   string
	seed       int64
	check      bool
	minSSDTHit float64

	overload    bool
	maxP99US    float64
	maxShedFrac float64
	minOverload float64
}

// parseBatchMix parses the -batch-mix CSV into a size cycle; empty means
// "not set". Sizes must be positive (1 means a singleton GET).
func parseBatchMix(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	mix := make([]int, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -batch-mix entry %q", part)
		}
		mix = append(mix, v)
	}
	return mix, nil
}

// Latency histogram: 5 µs buckets over 20 ms, matching the server's
// endpoint streams.
func newLatStream() stats.Stream { return stats.NewStream(5, 4096) }

func main() {
	var cfg loadConfig
	flag.StringVar(&cfg.addr, "addr", "", "daemon address host:port or URL (required unless -targets)")
	flag.StringVar(&cfg.targets, "targets", "", "comma-separated endpoints; workers spread round-robin and the final metrics merge across all of them")
	flag.IntVar(&cfg.nets, "nets", 0, "spread requests across this many named networks p0..p<K-1> (0 = default network only)")
	flag.StringVar(&cfg.churnNet, "churn-net", "", "confine -churn fault/repair traffic to this named network")
	flag.IntVar(&cfg.workers, "workers", 8, "closed-loop worker goroutines")
	flag.DurationVar(&cfg.duration, "duration", 2*time.Second, "load duration")
	flag.Float64Var(&cfg.tsdtFrac, "tsdt", 0.2, "fraction of requests using the TSDT scheme (rest SSDT)")
	flag.Float64Var(&cfg.zipfS, "zipf", 1.3, "zipf exponent for destination popularity (values <= 1 mean uniform)")
	flag.Float64Var(&cfg.churn, "churn", 0, "per-request probability of also toggling a random nonstraight link fault")
	flag.IntVar(&cfg.batch, "batch", 0, "send /route/batch requests of this size instead of single /route calls (0/1 = singles)")
	flag.StringVar(&cfg.batchMix, "batch-mix", "", "cycle through these comma-separated batch sizes per iteration (overrides -batch; sizes <= 1 go as single /route calls)")
	flag.Int64Var(&cfg.seed, "seed", 1, "RNG seed")
	flag.BoolVar(&cfg.check, "check", false, "exit non-zero unless the run is error-free with non-zero throughput")
	flag.Float64Var(&cfg.minSSDTHit, "min-ssdt-hit", 0, "with -check, minimum server-side SSDT cache hit rate")
	flag.BoolVar(&cfg.overload, "overload", false, "saturation rehearsal: sheds (429s) are expected, and -check demands the slow path actually overloaded without collapsing")
	flag.Float64Var(&cfg.maxP99US, "max-p99us", 20000, "with -overload -check, maximum client p99 latency in µs")
	flag.Float64Var(&cfg.maxShedFrac, "max-shed", 0.99, "with -overload -check, maximum fraction of requests shed")
	flag.Float64Var(&cfg.minOverload, "min-overload", 0, "with -overload -check, minimum offered/admitted slow-path factor (e.g. 4 = 4x saturation)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version("iadmload"))
		return
	}
	if cfg.addr == "" && cfg.targets == "" {
		fmt.Fprintln(os.Stderr, "iadmload: -addr or -targets is required")
		os.Exit(2)
	}
	sum, err := run(cfg, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iadmload:", err)
		os.Exit(1)
	}
	if cfg.check {
		if msgs := sum.violations(cfg); len(msgs) > 0 {
			fmt.Fprintln(os.Stderr, "iadmload: CHECK FAILED:", strings.Join(msgs, "; "))
			os.Exit(1)
		}
		fmt.Fprintln(os.Stdout, "iadmload: check ok")
	}
}

// workerStats accumulates one worker's view of the run.
type workerStats struct {
	requests     int // route requests issued (batch items counted singly)
	transport    int // connection/IO failures
	badStatus    int // non-200 route responses (422 unroutable included)
	itemErrors   int // per-item errors inside 200 batch responses
	shed         int // 429 route responses (admission refusals)
	itemSheds    int // batch items with code "overload" inside 200 responses
	faults       int // fault toggles sent
	repairs      int // repair toggles sent
	mutateErrors int // failed fault/repair posts
	lat          stats.Stream
}

type summary struct {
	cfg       loadConfig
	n         int
	elapsed   time.Duration
	total     workerStats
	metrics   routesvc.MetricsJSON
	batchUsed bool // any /route/batch traffic was requested
}

func (s *summary) throughput() float64 {
	if s.elapsed <= 0 {
		return 0
	}
	return float64(s.total.requests) / s.elapsed.Seconds()
}

// sheds is the client-side view of admission refusals: 429 responses plus
// individually shed batch items.
func (s *summary) sheds() int { return s.total.shed + s.total.itemSheds }

// successes counts requests that came back 200 with a tag: total minus
// every failure class and minus sheds (a shed is not a success even
// though it is intentional).
func (s *summary) successes() int {
	return s.total.requests - s.total.transport - s.total.badStatus -
		s.total.itemErrors - s.sheds()
}

// okPerSec is the success throughput — the capacity number the fleet
// smoke compares across topologies (sheds excluded, so a gate that
// refuses 80% of traffic cannot masquerade as capacity).
func (s *summary) okPerSec() float64 {
	if s.elapsed <= 0 {
		return 0
	}
	return float64(s.successes()) / s.elapsed.Seconds()
}

// overloadFactor is offered/admitted slow-path demand as the server saw
// it: 1.0 means the gate never refused, 4.0 means four times saturation.
func (s *summary) overloadFactor() float64 {
	adm := s.metrics.Service.Admission
	if adm.Admitted == 0 {
		if adm.Shed == 0 {
			return 0
		}
		return float64(adm.Shed)
	}
	return float64(adm.Admitted+adm.Shed) / float64(adm.Admitted)
}

// violations evaluates the -check contract.
func (s *summary) violations(cfg loadConfig) []string {
	var v []string
	if s.total.requests == 0 {
		v = append(v, "zero requests completed")
	}
	if s.total.transport > 0 {
		v = append(v, fmt.Sprintf("%d transport errors", s.total.transport))
	}
	if s.total.badStatus > 0 {
		v = append(v, fmt.Sprintf("%d non-200 route responses", s.total.badStatus))
	}
	if s.total.itemErrors > 0 {
		v = append(v, fmt.Sprintf("%d batch item errors", s.total.itemErrors))
	}
	if s.total.mutateErrors > 0 {
		v = append(v, fmt.Sprintf("%d failed fault/repair posts", s.total.mutateErrors))
	}
	if s.metrics.HTTP5xx > 0 {
		v = append(v, fmt.Sprintf("server counted %d 5xx", s.metrics.HTTP5xx))
	}
	if cfg.tsdtFrac < 1 && s.metrics.Service.SSDTHitRate < cfg.minSSDTHit {
		v = append(v, fmt.Sprintf("SSDT hit rate %.3f < %.3f", s.metrics.Service.SSDTHitRate, cfg.minSSDTHit))
	}
	if s.batchUsed && s.metrics.Service.SlicedLanes == 0 {
		v = append(v, "batch traffic sent but server reports sliced kernel unused")
	}
	if !cfg.overload {
		// In a normal run the server should never be driven into its
		// admission gate; a shed means the smoke scenario is mis-tuned.
		if n := s.sheds(); n > 0 {
			v = append(v, fmt.Sprintf("%d requests shed (429/overload) without -overload", n))
		}
		return v
	}

	// Overload contract: the slow path was genuinely saturated, yet the
	// service kept serving and the tail stayed bounded.
	adm := s.metrics.Service.Admission
	if !adm.Enabled {
		v = append(v, "overload mode against a daemon without admission control")
	}
	if adm.Shed == 0 {
		v = append(v, "overload mode but the server shed nothing (slow path never saturated)")
	}
	if f := s.overloadFactor(); f < cfg.minOverload {
		v = append(v, fmt.Sprintf("overload factor %.1fx < %.1fx", f, cfg.minOverload))
	}
	if s.successes() <= 0 {
		v = append(v, "service collapsed: zero successful responses under overload")
	}
	if frac := float64(s.sheds()) / float64(max(1, s.total.requests)); frac > cfg.maxShedFrac {
		v = append(v, fmt.Sprintf("shed fraction %.3f > %.3f", frac, cfg.maxShedFrac))
	}
	if p99 := s.total.lat.Percentile(99); p99 > cfg.maxP99US {
		v = append(v, fmt.Sprintf("client p99 %.0fµs > %.0fµs under overload", p99, cfg.maxP99US))
	}
	return v
}

// normBase turns an -addr/-targets entry into a base URL.
func normBase(s string) string {
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return strings.TrimSuffix(s, "/")
}

func run(cfg loadConfig, w io.Writer) (*summary, error) {
	var bases []string
	if cfg.targets != "" {
		for _, t := range strings.Split(cfg.targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				bases = append(bases, normBase(t))
			}
		}
	} else {
		bases = []string{normBase(cfg.addr)}
	}
	if len(bases) == 0 {
		return nil, fmt.Errorf("-targets has no endpoints")
	}
	if cfg.workers < 1 {
		return nil, fmt.Errorf("need at least 1 worker")
	}
	if cfg.batch < 0 || cfg.tsdtFrac < 0 || cfg.tsdtFrac > 1 || cfg.churn < 0 || cfg.churn > 1 || cfg.nets < 0 {
		return nil, fmt.Errorf("bad flag values")
	}
	mix, err := parseBatchMix(cfg.batchMix)
	if err != nil {
		return nil, err
	}

	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        2 * cfg.workers * len(bases),
			MaxIdleConnsPerHost: 2 * cfg.workers,
		},
	}

	// The daemon tells us the address space; no -n flag to get wrong.
	// Every target must agree — mixed sizes would generate unroutable
	// (src,dst) pairs against the smaller fabrics.
	n := 0
	for _, base := range bases {
		var health routesvc.HealthJSON
		if err := getJSON(client, base+"/healthz", &health); err != nil {
			return nil, fmt.Errorf("daemon not healthy at %s: %v", base, err)
		}
		if n == 0 {
			n = health.N
		} else if health.N != n {
			return nil, fmt.Errorf("%s serves N=%d, others N=%d", base, health.N, n)
		}
	}
	if n < 2 {
		return nil, fmt.Errorf("daemon reports N=%d", n)
	}
	// Stages = log2(n), for generating nonstraight churn links.
	stages := 0
	for 1<<stages < n {
		stages++
	}

	batchDesc := fmt.Sprintf("%d", cfg.batch)
	if mix != nil {
		batchDesc = "mix " + cfg.batchMix
	}
	target := bases[0]
	if len(bases) > 1 {
		target = fmt.Sprintf("%d targets", len(bases))
	}
	fmt.Fprintf(w, "iadmload: %d workers for %v against %s (N=%d, nets=%d, tsdt=%.2f, zipf=%.2f, churn=%.3f, batch=%s)\n",
		cfg.workers, cfg.duration, target, n, cfg.nets, cfg.tsdtFrac, cfg.zipfS, cfg.churn, batchDesc)

	start := time.Now()
	deadline := start.Add(cfg.duration)
	results := make([]workerStats, cfg.workers)
	var wg sync.WaitGroup
	for id := 0; id < cfg.workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id] = worker(cfg, mix, client, bases[id%len(bases)], n, stages, id, deadline)
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)

	batchUsed := cfg.batch > 1
	for _, sz := range mix {
		if sz > 1 {
			batchUsed = true
		}
	}
	sum := &summary{cfg: cfg, n: n, elapsed: elapsed, batchUsed: batchUsed}
	sum.total.lat = newLatStream()
	for i := range results {
		r := &results[i]
		sum.total.requests += r.requests
		sum.total.transport += r.transport
		sum.total.badStatus += r.badStatus
		sum.total.itemErrors += r.itemErrors
		sum.total.shed += r.shed
		sum.total.itemSheds += r.itemSheds
		sum.total.faults += r.faults
		sum.total.repairs += r.repairs
		sum.total.mutateErrors += r.mutateErrors
		sum.total.lat.Merge(&r.lat)
	}
	// One /metrics scrape per target, merged into a single cluster view
	// (identical to the single-target document when there is one target).
	for i, base := range bases {
		var doc routesvc.MetricsJSON
		if err := getJSON(client, base+"/metrics", &doc); err != nil {
			return nil, fmt.Errorf("fetching final metrics: %v", err)
		}
		if i == 0 {
			sum.metrics = doc
		} else {
			routesvc.MergeMetricsJSON(&sum.metrics, doc)
		}
	}

	lat := &sum.total.lat
	fmt.Fprintf(w, "requests: %d in %.2fs (%.0f req/s); errors: %d transport, %d bad status, %d batch items, %d mutate\n",
		sum.total.requests, elapsed.Seconds(), sum.throughput(),
		sum.total.transport, sum.total.badStatus, sum.total.itemErrors, sum.total.mutateErrors)
	fmt.Fprintf(w, "success: %d ok (%.0f ok/s)\n", sum.successes(), sum.okPerSec())
	fmt.Fprintf(w, "latency µs: mean=%.1f p50=%g p90=%g p99=%g max=%g\n",
		lat.Mean(), lat.Percentile(50), lat.Percentile(90), lat.Percentile(99), lat.Max())
	fmt.Fprintf(w, "churn: %d faults, %d repairs; final epoch %d, blocked %d\n",
		sum.total.faults, sum.total.repairs, sum.metrics.Service.Epoch, sum.metrics.Controller.BlockedLinks)
	fmt.Fprintf(w, "server: ssdt hit rate %.3f (%d/%d), tsdt hit rate %.3f (%d/%d), coalesced %d, cache entries %d, http 5xx %d\n",
		sum.metrics.Service.SSDTHitRate, sum.metrics.Service.SSDT.Hits, sum.metrics.Service.SSDT.Hits+sum.metrics.Service.SSDT.Misses,
		sum.metrics.Service.TSDTHitRate, sum.metrics.Service.TSDT.Hits, sum.metrics.Service.TSDT.Hits+sum.metrics.Service.TSDT.Misses,
		sum.metrics.Service.SSDT.Coalesced+sum.metrics.Service.TSDT.Coalesced,
		sum.metrics.Service.CacheEntries, sum.metrics.HTTP5xx)
	if sum.metrics.Service.SlicedBlocks > 0 {
		fmt.Fprintf(w, "server: sliced kernel filled %d lanes in %d blocks (%.1f%% lane fill)\n",
			sum.metrics.Service.SlicedLanes, sum.metrics.Service.SlicedBlocks,
			100*sum.metrics.Service.SlicedFill)
	}
	if adm := sum.metrics.Service.Admission; cfg.overload || sum.sheds() > 0 || adm.Shed > 0 {
		fmt.Fprintf(w, "overload: client saw %d 429s + %d shed batch items; server admitted %d, shed %d (%.1fx offered/admitted), threshold %d/%d, %d controller rounds\n",
			sum.total.shed, sum.total.itemSheds, adm.Admitted, adm.Shed,
			sum.overloadFactor(), adm.Threshold, adm.MaxQueue, adm.Rounds)
	}
	return sum, nil
}

func worker(cfg loadConfig, mix []int, client *http.Client, base string, n, stages, id int, deadline time.Time) workerStats {
	rng := rand.New(rand.NewSource(cfg.seed + int64(id)*0x9E3779B9))
	var zipf *rand.Zipf
	if cfg.zipfS > 1 {
		zipf = rand.NewZipf(rng, cfg.zipfS, 1, uint64(n-1))
	}
	ws := workerStats{lat: newLatStream()}
	var faulted []string // this worker's outstanding nonstraight faults

	pickDst := func() int {
		if zipf != nil {
			return int(zipf.Uint64())
		}
		return rng.Intn(n)
	}
	pickScheme := func() string {
		if rng.Float64() < cfg.tsdtFrac {
			return "tsdt"
		}
		return "ssdt"
	}
	pickNet := func() string {
		if cfg.nets > 0 {
			return fmt.Sprintf("p%d", rng.Intn(cfg.nets))
		}
		return ""
	}

	mi := 0
	for time.Now().Before(deadline) {
		size := cfg.batch
		if mix != nil {
			size = mix[mi%len(mix)]
			mi++
		}
		if cfg.churn > 0 && rng.Float64() < cfg.churn {
			if len(faulted) > 0 && rng.Intn(2) == 0 {
				i := rng.Intn(len(faulted))
				spec := faulted[i]
				faulted = append(faulted[:i], faulted[i+1:]...)
				ws.repairs++
				if !postMutate(client, base+"/repair", spec, cfg.churnNet) {
					ws.mutateErrors++
				}
			} else {
				kind := "+"
				if rng.Intn(2) == 0 {
					kind = "-"
				}
				spec := fmt.Sprintf("%d:%d:%s", rng.Intn(stages), rng.Intn(n), kind)
				faulted = append(faulted, spec)
				ws.faults++
				if !postMutate(client, base+"/fault", spec, cfg.churnNet) {
					ws.mutateErrors++
				}
			}
		}
		if size > 1 {
			reqs := make([]routesvc.RouteJSON, size)
			for i := range reqs {
				reqs[i] = routesvc.RouteJSON{Net: pickNet(), Src: rng.Intn(n), Dst: pickDst(), Scheme: pickScheme()}
			}
			body, _ := json.Marshal(routesvc.BatchJSON{Requests: reqs})
			t0 := time.Now()
			resp, err := client.Post(base+"/route/batch", "application/json", bytes.NewReader(body))
			us := float64(time.Since(t0).Microseconds())
			ws.requests += size
			if err != nil {
				ws.transport++
				continue
			}
			var out routesvc.BatchJSON
			decErr := json.NewDecoder(resp.Body).Decode(&out)
			io.Copy(io.Discard, resp.Body) // leave the connection reusable
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				ws.badStatus++
				continue
			}
			if decErr != nil {
				ws.transport++
				continue
			}
			ws.lat.Add(us)
			for _, r := range out.Responses {
				switch {
				case r.Code == "overload":
					ws.itemSheds++
				case r.Error != "":
					ws.itemErrors++
				}
			}
		} else {
			url := fmt.Sprintf("%s/route?src=%d&dst=%d&scheme=%s", base, rng.Intn(n), pickDst(), pickScheme())
			if net := pickNet(); net != "" {
				url += "&net=" + net
			}
			t0 := time.Now()
			resp, err := client.Get(url)
			us := float64(time.Since(t0).Microseconds())
			ws.requests++
			if err != nil {
				ws.transport++
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ws.lat.Add(us)
			case http.StatusTooManyRequests:
				// Admission refusal: fail-fast by design, so it still
				// counts toward the client latency distribution.
				ws.shed++
				ws.lat.Add(us)
			default:
				ws.badStatus++
			}
		}
	}

	// Leave the map as we found it: repair this worker's leftover faults.
	for _, spec := range faulted {
		ws.repairs++
		if !postMutate(client, base+"/repair", spec, cfg.churnNet) {
			ws.mutateErrors++
		}
	}
	return ws
}

func postMutate(client *http.Client, url, linkSpec, net string) bool {
	body, _ := json.Marshal(routesvc.MutateJSON{Net: net, Links: []string{linkSpec}})
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(body))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
