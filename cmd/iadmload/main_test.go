package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"iadm/internal/routesvc"
)

func newTestServer(t *testing.T, n int) *httptest.Server {
	t.Helper()
	svc, err := routesvc.New(routesvc.Config{N: n})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(routesvc.NewHandler(svc))
	t.Cleanup(ts.Close)
	return ts
}

// TestRunAgainstService drives a short closed loop with fault churn
// against an in-process service and checks the error-free contract the
// serve-smoke target relies on.
func TestRunAgainstService(t *testing.T) {
	ts := newTestServer(t, 64)
	cfg := loadConfig{
		addr:       ts.URL,
		workers:    2,
		duration:   300 * time.Millisecond,
		tsdtFrac:   0.3,
		zipfS:      1.3,
		churn:      0.05,
		seed:       1,
		minSSDTHit: 0.5,
	}
	var out strings.Builder
	sum, err := run(cfg, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if sum.total.requests == 0 {
		t.Fatal("no requests completed")
	}
	if sum.n != 64 {
		t.Errorf("learned N=%d from /healthz, want 64", sum.n)
	}
	if sum.total.faults == 0 || sum.total.repairs != sum.total.faults {
		t.Errorf("churn not balanced: %d faults, %d repairs", sum.total.faults, sum.total.repairs)
	}
	if sum.metrics.Controller.BlockedLinks != 0 {
		t.Errorf("%d links left blocked after the run", sum.metrics.Controller.BlockedLinks)
	}
	if v := sum.violations(cfg); len(v) > 0 {
		t.Errorf("check contract violated: %v\noutput:\n%s", v, out.String())
	}
	if sum.throughput() <= 0 {
		t.Errorf("throughput %.1f", sum.throughput())
	}
}

func TestRunBatchMode(t *testing.T) {
	ts := newTestServer(t, 32)
	cfg := loadConfig{
		addr:     ts.URL,
		workers:  2,
		duration: 200 * time.Millisecond,
		tsdtFrac: 0.5,
		batch:    4,
		seed:     7,
	}
	var out strings.Builder
	sum, err := run(cfg, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if sum.total.requests == 0 || sum.total.requests%4 != 0 {
		t.Errorf("batch request count %d not a positive multiple of 4", sum.total.requests)
	}
	if v := sum.violations(cfg); len(v) > 0 {
		t.Errorf("check contract violated: %v\noutput:\n%s", v, out.String())
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	ts := newTestServer(t, 8)
	var out strings.Builder
	bad := []loadConfig{
		{addr: ts.URL, workers: 0, duration: time.Millisecond},
		{addr: ts.URL, workers: 1, duration: time.Millisecond, tsdtFrac: 1.5},
		{addr: ts.URL, workers: 1, duration: time.Millisecond, churn: -0.1},
		{addr: "127.0.0.1:1", workers: 1, duration: time.Millisecond}, // nothing listening
	}
	for i, cfg := range bad {
		if _, err := run(cfg, &out); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// TestViolations exercises the -check contract on synthetic summaries.
func TestViolations(t *testing.T) {
	cfg := loadConfig{minSSDTHit: 0.9}
	var s summary
	s.total.requests = 100
	s.metrics.Service.SSDTHitRate = 0.95
	if v := s.violations(cfg); len(v) != 0 {
		t.Errorf("clean summary flagged: %v", v)
	}

	s.total.transport = 1
	s.total.badStatus = 2
	s.total.itemErrors = 3
	s.total.mutateErrors = 4
	s.metrics.HTTP5xx = 5
	s.metrics.Service.SSDTHitRate = 0.1
	if v := s.violations(cfg); len(v) != 6 {
		t.Errorf("want 6 violations, got %d: %v", len(v), v)
	}

	// A pure-TSDT run must not be held to the SSDT hit-rate floor.
	cfg.tsdtFrac = 1
	s = summary{}
	s.total.requests = 10
	if v := s.violations(cfg); len(v) != 0 {
		t.Errorf("pure-TSDT run flagged: %v", v)
	}

	var empty summary
	if v := empty.violations(loadConfig{tsdtFrac: 1}); len(v) != 1 {
		t.Errorf("empty run should report exactly the zero-requests violation, got %v", v)
	}
}
