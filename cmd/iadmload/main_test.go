package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"iadm/internal/routesvc"
)

func newTestServer(t *testing.T, n int) *httptest.Server {
	t.Helper()
	svc, err := routesvc.New(routesvc.Config{N: n})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(routesvc.NewHandler(svc))
	t.Cleanup(ts.Close)
	return ts
}

// TestRunAgainstService drives a short closed loop with fault churn
// against an in-process service and checks the error-free contract the
// serve-smoke target relies on.
func TestRunAgainstService(t *testing.T) {
	ts := newTestServer(t, 64)
	cfg := loadConfig{
		addr:       ts.URL,
		workers:    2,
		duration:   300 * time.Millisecond,
		tsdtFrac:   0.3,
		zipfS:      1.3,
		churn:      0.05,
		seed:       1,
		minSSDTHit: 0.5,
	}
	var out strings.Builder
	sum, err := run(cfg, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if sum.total.requests == 0 {
		t.Fatal("no requests completed")
	}
	if sum.n != 64 {
		t.Errorf("learned N=%d from /healthz, want 64", sum.n)
	}
	if sum.total.faults == 0 || sum.total.repairs != sum.total.faults {
		t.Errorf("churn not balanced: %d faults, %d repairs", sum.total.faults, sum.total.repairs)
	}
	if sum.metrics.Controller.BlockedLinks != 0 {
		t.Errorf("%d links left blocked after the run", sum.metrics.Controller.BlockedLinks)
	}
	if v := sum.violations(cfg); len(v) > 0 {
		t.Errorf("check contract violated: %v\noutput:\n%s", v, out.String())
	}
	if sum.throughput() <= 0 {
		t.Errorf("throughput %.1f", sum.throughput())
	}
}

func TestRunBatchMode(t *testing.T) {
	ts := newTestServer(t, 32)
	cfg := loadConfig{
		addr:     ts.URL,
		workers:  2,
		duration: 200 * time.Millisecond,
		tsdtFrac: 0.5,
		batch:    4,
		seed:     7,
	}
	var out strings.Builder
	sum, err := run(cfg, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if sum.total.requests == 0 || sum.total.requests%4 != 0 {
		t.Errorf("batch request count %d not a positive multiple of 4", sum.total.requests)
	}
	if v := sum.violations(cfg); len(v) > 0 {
		t.Errorf("check contract violated: %v\noutput:\n%s", v, out.String())
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	ts := newTestServer(t, 8)
	var out strings.Builder
	bad := []loadConfig{
		{addr: ts.URL, workers: 0, duration: time.Millisecond},
		{addr: ts.URL, workers: 1, duration: time.Millisecond, tsdtFrac: 1.5},
		{addr: ts.URL, workers: 1, duration: time.Millisecond, churn: -0.1},
		{addr: "127.0.0.1:1", workers: 1, duration: time.Millisecond}, // nothing listening
	}
	for i, cfg := range bad {
		if _, err := run(cfg, &out); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// TestViolations exercises the -check contract on synthetic summaries.
func TestViolations(t *testing.T) {
	cfg := loadConfig{minSSDTHit: 0.9}
	var s summary
	s.total.requests = 100
	s.metrics.Service.SSDTHitRate = 0.95
	if v := s.violations(cfg); len(v) != 0 {
		t.Errorf("clean summary flagged: %v", v)
	}

	s.total.transport = 1
	s.total.badStatus = 2
	s.total.itemErrors = 3
	s.total.mutateErrors = 4
	s.metrics.HTTP5xx = 5
	s.metrics.Service.SSDTHitRate = 0.1
	if v := s.violations(cfg); len(v) != 6 {
		t.Errorf("want 6 violations, got %d: %v", len(v), v)
	}

	// A pure-TSDT run must not be held to the SSDT hit-rate floor.
	cfg.tsdtFrac = 1
	s = summary{}
	s.total.requests = 10
	if v := s.violations(cfg); len(v) != 0 {
		t.Errorf("pure-TSDT run flagged: %v", v)
	}

	var empty summary
	if v := empty.violations(loadConfig{tsdtFrac: 1}); len(v) != 1 {
		t.Errorf("empty run should report exactly the zero-requests violation, got %v", v)
	}
}

// TestRunOverload drives the saturation contract end to end against an
// in-process daemon with a tiny admission bound and an artificially slow
// slow path: sheds must appear, the service must keep answering, and the
// overload -check gate must pass.
func TestRunOverload(t *testing.T) {
	svc, err := routesvc.New(routesvc.Config{
		N: 32,
		Admission: routesvc.AdmissionConfig{
			MaxQueue: 2,
			MinQueue: 1,
			Round:    20 * time.Millisecond,
		},
		SlowCost: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(routesvc.NewHandler(svc))
	t.Cleanup(ts.Close)

	cfg := loadConfig{
		addr:        ts.URL,
		workers:     8,
		duration:    500 * time.Millisecond,
		tsdtFrac:    1, // every request is slow-path eligible
		seed:        3,
		overload:    true,
		maxP99US:    20000,
		maxShedFrac: 0.999,
		minOverload: 2,
	}
	var out strings.Builder
	sum, err := run(cfg, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if sum.sheds() == 0 {
		t.Fatalf("no sheds observed; admission gate never engaged\noutput:\n%s", out.String())
	}
	if sum.metrics.Service.Admission.Shed == 0 {
		t.Error("server-side shed counter is zero")
	}
	successes := sum.total.requests - sum.total.transport - sum.total.badStatus -
		sum.total.itemErrors - sum.sheds()
	if successes <= 0 {
		t.Errorf("service collapsed: %d successes of %d requests", successes, sum.total.requests)
	}
	if f := sum.overloadFactor(); f < 2 {
		t.Errorf("overload factor %.2f, want >= 2x", f)
	}
	if v := sum.violations(cfg); len(v) > 0 {
		t.Errorf("overload check violated: %v\noutput:\n%s", v, out.String())
	}
	if !strings.Contains(out.String(), "overload:") {
		t.Errorf("summary missing overload line:\n%s", out.String())
	}
}

// TestViolationsOverload exercises the overload branch of the -check
// contract on synthetic summaries.
func TestViolationsOverload(t *testing.T) {
	cfg := loadConfig{overload: true, maxP99US: 20000, maxShedFrac: 0.9, minOverload: 4}

	mk := func() summary {
		var s summary
		s.total.requests = 1000
		s.total.shed = 100
		s.total.lat = newLatStream()
		s.total.lat.Add(500)
		s.metrics.Service.Admission.Enabled = true
		s.metrics.Service.Admission.Admitted = 100
		s.metrics.Service.Admission.Shed = 300
		return s
	}
	if s := mk(); len(s.violations(cfg)) != 0 {
		t.Errorf("clean overload summary flagged: %v", s.violations(cfg))
	}

	// No server sheds: the run never saturated the slow path.
	s := mk()
	s.metrics.Service.Admission.Shed = 0
	if v := s.violations(cfg); len(v) != 2 { // no sheds + factor below min
		t.Errorf("unsaturated run: want 2 violations, got %v", v)
	}

	// Admission disabled on the server.
	s = mk()
	s.metrics.Service.Admission.Enabled = false
	if v := s.violations(cfg); len(v) != 1 {
		t.Errorf("disabled admission: want 1 violation, got %v", v)
	}

	// Total collapse: everything shed.
	s = mk()
	s.total.shed = s.total.requests
	if v := s.violations(cfg); len(v) != 2 { // collapse + shed fraction
		t.Errorf("collapsed run: want 2 violations, got %v", v)
	}

	// Tail blew past the bound.
	s = mk()
	s.total.lat.Add(50000) // lands in the overflow bin
	cfgTight := cfg
	cfgTight.maxP99US = 1000
	if v := s.violations(cfgTight); len(v) != 1 {
		t.Errorf("slow tail: want 1 violation, got %v", v)
	}

	// Sheds without -overload are a mis-tuned smoke scenario.
	s = mk()
	if v := s.violations(loadConfig{tsdtFrac: 1}); len(v) != 1 {
		t.Errorf("sheds without -overload: want 1 violation, got %v", v)
	}
}
