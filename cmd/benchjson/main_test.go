package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: iadm/internal/simulator
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCyclesPerSecond/N=8/static-C-4         	    1000	     50000 ns/op	       0 B/op	       0 allocs/op
BenchmarkCyclesPerSecond/N=8/static-C-4         	    1000	     48000 ns/op	       0 B/op	       0 allocs/op
BenchmarkCyclesPerSecond/N=64/adaptive-SSDT-4   	     200	    650000 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotspotRun-4                           	     500	    123456.5 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	iadm/internal/simulator	2.345s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Package != "iadm/internal/simulator" {
		t.Errorf("metadata wrong: %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("cpu wrong: %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	first := rep.Benchmarks[0]
	if first.Name != "BenchmarkCyclesPerSecond/N=8/static-C" {
		t.Errorf("name (GOMAXPROCS suffix must be stripped): %q", first.Name)
	}
	if len(first.Samples) != 2 {
		t.Fatalf("repeated lines must group: %d samples", len(first.Samples))
	}
	if first.MinNsPerOp != 48000 || first.MeanNsPerOp != 49000 {
		t.Errorf("aggregates wrong: min %v mean %v", first.MinNsPerOp, first.MeanNsPerOp)
	}
	if first.AllocsPerOp != 0 || first.Samples[0].BytesPerOp != 0 {
		t.Errorf("benchmem columns wrong: %+v", first)
	}
	if got := rep.Benchmarks[2]; got.Name != "BenchmarkHotspotRun" || got.Samples[0].NsPerOp != 123456.5 {
		t.Errorf("fractional ns/op wrong: %+v", got)
	}
}

func TestParseWithoutBenchmem(t *testing.T) {
	rep, err := parse(strings.NewReader("BenchmarkX-8   100   42 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("got %d benchmarks", len(rep.Benchmarks))
	}
	s := rep.Benchmarks[0].Samples[0]
	if s.NsPerOp != 42 || s.Runs != 100 {
		t.Errorf("sample wrong: %+v", s)
	}
	if s.BytesPerOp != -1 || s.AllocsPerOp != -1 {
		t.Errorf("missing benchmem columns must read -1: %+v", s)
	}
}

const multiPkgOutput = `goos: linux
goarch: amd64
pkg: iadm/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRouteSSDTPacked/N=4096-4 	 4000000	        82.3 ns/op	       0 B/op	       0 allocs/op
BenchmarkRouteSSDTPacked/N=4096-4 	 4000000	        81.9 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	iadm/internal/core	1.234s
pkg: iadm/internal/paths
BenchmarkFind/N=4096-4            	  500000	       661.0 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	iadm/internal/paths	0.567s
`

// TestParseMultiPackage: result lines are attributed to the preceding pkg:
// header, names are qualified with the package base element, and the
// report's package field lists every package.
func TestParseMultiPackage(t *testing.T) {
	rep, err := parse(strings.NewReader(multiPkgOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Package != "iadm/internal/core,iadm/internal/paths" {
		t.Errorf("package list wrong: %q", rep.Package)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	ssdt := rep.Benchmarks[0]
	if ssdt.Name != "core.BenchmarkRouteSSDTPacked/N=4096" || ssdt.Package != "iadm/internal/core" {
		t.Errorf("qualified name/package wrong: %+v", ssdt)
	}
	if len(ssdt.Samples) != 2 || ssdt.MinNsPerOp != 81.9 {
		t.Errorf("sample grouping wrong: %+v", ssdt)
	}
	if find := rep.Benchmarks[1]; find.Name != "paths.BenchmarkFind/N=4096" || find.Package != "iadm/internal/paths" {
		t.Errorf("qualified name/package wrong: %+v", find)
	}
}

// TestParseSinglePackageShape: one-package reports keep unqualified names
// and omit the per-benchmark package field, so the committed
// BENCH_simulator.json baseline still compares.
func TestParseSinglePackageShape(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range rep.Benchmarks {
		if strings.Contains(b.Name, ".Benchmark") || b.Package != "" {
			t.Errorf("single-package benchmark must stay unqualified: %+v", b)
		}
	}
}

const metricOutput = `goos: linux
goarch: amd64
pkg: iadm/internal/routesvc
BenchmarkTagStoreFlat/N=4096-4 	24426476	        48.50 ns/op	        78.77 bits/route	       0 B/op	       0 allocs/op
BenchmarkTagStoreFlat/N=4096-4 	24426476	        49.50 ns/op	        78.79 bits/route	       0 B/op	       0 allocs/op
BenchmarkTagStoreDense/N=4096-4 	183577429	         6.533 ns/op	        13.03 bits/route	       0 B/op	       0 allocs/op
PASS
ok  	iadm/internal/routesvc	9.876s
`

// TestParseCustomMetrics: b.ReportMetric columns print between ns/op and
// the -benchmem pair; they land in a per-sample metrics map and average
// into the benchmark's, without disturbing the benchmem columns.
func TestParseCustomMetrics(t *testing.T) {
	rep, err := parse(strings.NewReader(metricOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	flat := rep.Benchmarks[0]
	if flat.Samples[0].NsPerOp != 48.5 || flat.Samples[0].BytesPerOp != 0 || flat.Samples[0].AllocsPerOp != 0 {
		t.Errorf("standard columns disturbed: %+v", flat.Samples[0])
	}
	if got := flat.Samples[0].Metrics["bits/route"]; got != 78.77 {
		t.Errorf("sample bits/route = %v, want 78.77", got)
	}
	if got := flat.Metrics["bits/route"]; got != 78.78 {
		t.Errorf("mean bits/route = %v, want 78.78", got)
	}
	if dense := rep.Benchmarks[1]; dense.Metrics["bits/route"] != 13.03 {
		t.Errorf("dense metrics wrong: %+v", dense.Metrics)
	}
}

// TestMetricMapDeterministic: the metrics map must marshal with sorted
// keys, byte-identically across marshals, regardless of insertion order
// — committed BENCH_*.json reports are diffed, so key order is contract.
func TestMetricMapDeterministic(t *testing.T) {
	units := []string{"ns/route", "bits/route", "lanes/block", "B/route", "fill%"}
	build := func(perm []int) metricMap {
		m := metricMap{}
		for _, i := range perm {
			m[units[i]] = float64(i) + 0.5
		}
		return m
	}
	want, err := json.Marshal(build([]int{0, 1, 2, 3, 4}))
	if err != nil {
		t.Fatal(err)
	}
	for _, perm := range [][]int{{4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}, {1, 4, 0, 3, 2}} {
		got, err := json.Marshal(build(perm))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("insertion order %v changed the encoding:\n got %s\nwant %s", perm, got, want)
		}
	}
	// Keys appear in sorted order in the output.
	var decoded map[string]float64
	if err := json.Unmarshal(want, &decoded); err != nil {
		t.Fatalf("sorted encoding does not round-trip: %v\n%s", err, want)
	}
	sorted := append([]string(nil), units...)
	sort.Strings(sorted)
	pos := -1
	for _, k := range sorted {
		i := bytes.Index(want, []byte(fmt.Sprintf("%q", k)))
		if i < pos {
			t.Fatalf("key %q out of sorted order in %s", k, want)
		}
		pos = i
	}
}

// TestMetricMapInReport: the full report document embeds the sorted maps
// (both per-sample and per-benchmark) and stays byte-stable.
func TestMetricMapInReport(t *testing.T) {
	mk := func() Report {
		return Report{
			Package: "iadm/internal/fleet",
			Benchmarks: []Benchmark{{
				Name:    "BenchmarkFleetBatchRouted/n=64",
				Samples: []Sample{{Runs: 10, NsPerOp: 1, Metrics: metricMap{"z/unit": 1, "a/unit": 2, "m/unit": 3}}},
				Metrics: metricMap{"z/unit": 1, "a/unit": 2, "m/unit": 3},
			}},
		}
	}
	a, err := json.MarshalIndent(mk(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(mk(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("report encoding not deterministic:\n%s\nvs\n%s", a, b)
	}
	az, ai := bytes.Index(a, []byte(`"a/unit"`)), bytes.Index(a, []byte(`"z/unit"`))
	if az < 0 || ai < 0 || az > ai {
		t.Errorf("metrics keys not sorted in report:\n%s", a)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	rep, err := parse(strings.NewReader("PASS\nok  \tiadm\t1.2s\nrandom text\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("noise parsed as benchmarks: %+v", rep.Benchmarks)
	}
}

func TestCompareReports(t *testing.T) {
	mk := func(name string, mean float64) Benchmark {
		return Benchmark{Name: name, MeanNsPerOp: mean}
	}
	baseline := Report{Benchmarks: []Benchmark{
		mk("BenchmarkA/N=8", 1000),
		mk("BenchmarkB", 2000),
		mk("BenchmarkGone", 500),
	}}
	fresh := Report{Benchmarks: []Benchmark{
		mk("BenchmarkA/N=8", 1099), // +9.9%: within a 10% tolerance
		mk("BenchmarkB", 2300),     // +15%: regression
		mk("BenchmarkNew", 100),    // new coverage: fine
	}}
	violations := compareReports(baseline, fresh, 0.10)
	if len(violations) != 2 {
		t.Fatalf("want 2 violations (regression + missing), got %d: %v", len(violations), violations)
	}
	for _, v := range violations {
		if !strings.Contains(v, "BenchmarkB") && !strings.Contains(v, "BenchmarkGone") {
			t.Errorf("unexpected violation %q", v)
		}
	}
	if v := compareReports(baseline, fresh, 0.20); len(v) != 1 {
		t.Errorf("at 20%% tolerance only the missing benchmark should remain, got %v", v)
	}
}
