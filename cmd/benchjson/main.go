// Command benchjson runs the simulator benchmark suite and writes the
// parsed results as JSON, so CI (or a developer) can track the tracked
// numbers — ns/op and allocs/op of the cycle loop — across commits
// without scraping `go test -bench` text by hand.
//
// Usage:
//
//	benchjson [-bench regex] [-pkg path] [-count N] [-o file] [-compare file] [-tolerance frac]
//
// Defaults run the tracked benchmarks (BenchmarkCyclesPerSecond and
// BenchmarkLargeN) in ./internal/simulator with -count 5 and write
// BENCH_simulator.json. With -count > 1 every sample is kept and each
// benchmark also reports the min and mean ns/op across its samples (min
// is the stable number to compare across machines). Reports record the
// go version and the git commit they were produced at.
//
// -pkg accepts a comma-separated package list (the routing suite spans
// five packages); in multi-package reports every benchmark name is
// qualified with its package's base element, e.g.
// "paths.BenchmarkFind/N=4096", so the names -compare keys on stay
// unique. Single-package reports keep the historical unqualified shape.
//
// Custom b.ReportMetric columns (e.g. the tagstore suite's bits/route)
// are kept per sample and averaged into a per-benchmark metrics map, so
// footprint numbers land in the report alongside latency.
//
// With -compare, the fresh results are checked against a committed
// baseline report and the command fails if any benchmark's mean_ns_per_op
// regressed by more than -tolerance (default 0.10), or if a baseline
// benchmark is missing from the new run — `make bench-compare` wires this
// as the CI perf gate. Custom metrics are recorded but not gated.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// metricMap is a metrics column map that marshals its keys in sorted
// order. encoding/json happens to sort map keys today, but stable
// BENCH_*.json diffs are a contract of this tool — reports are committed
// and diffed across commits — so the ordering is pinned here instead of
// inherited as a library implementation detail.
type metricMap map[string]float64

func (m metricMap) MarshalJSON() ([]byte, error) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			buf.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		buf.Write(kb)
		buf.WriteByte(':')
		vb, err := json.Marshal(m[k])
		if err != nil {
			return nil, err
		}
		buf.Write(vb)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// Sample is one `go test -bench` result line. Metrics holds custom
// b.ReportMetric columns (e.g. "bits/route": 78.77) that go test prints
// between ns/op and the -benchmem columns.
type Sample struct {
	Runs        int       `json:"runs"`
	NsPerOp     float64   `json:"ns_per_op"`
	BytesPerOp  int64     `json:"bytes_per_op"`
	AllocsPerOp int64     `json:"allocs_per_op"`
	Metrics     metricMap `json:"metrics,omitempty"`
}

// Benchmark aggregates the samples of one benchmark name. In
// multi-package runs Name is qualified with the package's base element
// ("paths.BenchmarkFind/N=4096") so names stay unique, and Package holds
// the full import path.
type Benchmark struct {
	Name        string    `json:"name"`
	Package     string    `json:"package,omitempty"`
	Samples     []Sample  `json:"samples"`
	MinNsPerOp  float64   `json:"min_ns_per_op"`
	MeanNsPerOp float64   `json:"mean_ns_per_op"`
	AllocsPerOp int64     `json:"allocs_per_op"`
	Metrics     metricMap `json:"metrics,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	Package    string      `json:"package"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	GoVersion  string      `json:"go_version,omitempty"`
	Commit     string      `json:"commit,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkCyclesPerSecond/N=8/static-C-4   500   56556 ns/op   25360 B/op   13 allocs/op
//	BenchmarkTagStoreFlat/N=4096-4   2000000   48.5 ns/op   78.77 bits/route   0 B/op   0 allocs/op
//
// The trailing -4 is GOMAXPROCS and is stripped from the name. The tail
// after ns/op is a sequence of "<value> <unit>" column pairs: the B/op
// and allocs/op columns (present under -benchmem) plus any custom
// b.ReportMetric units, which go test prints between ns/op and B/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// parse reads `go test -bench` output and groups the result lines by
// (package, benchmark name), preserving first-seen order. Header lines
// (goos, goarch, cpu, pkg) fill the report metadata; a multi-package run
// emits one pkg: header per package and the result lines that follow one
// belong to it, so samples are attributed to the current header.
func parse(r io.Reader) (Report, error) {
	var rep Report
	var pkgs []string
	curPkg := ""
	index := map[[2]string]int{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			curPkg = strings.TrimPrefix(line, "pkg: ")
			seen := false
			for _, p := range pkgs {
				if p == curPkg {
					seen = true
					break
				}
			}
			if !seen {
				pkgs = append(pkgs, curPkg)
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		runs, err := strconv.Atoi(m[2])
		if err != nil {
			return rep, fmt.Errorf("benchjson: bad runs in %q: %v", line, err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return rep, fmt.Errorf("benchjson: bad ns/op in %q: %v", line, err)
		}
		s := Sample{Runs: runs, NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: -1}
		fields := strings.Fields(m[4])
		if len(fields)%2 != 0 {
			return rep, fmt.Errorf("benchjson: unpaired metric columns in %q", line)
		}
		for j := 0; j < len(fields); j += 2 {
			val, err := strconv.ParseFloat(fields[j], 64)
			if err != nil {
				return rep, fmt.Errorf("benchjson: bad %s value in %q: %v", fields[j+1], line, err)
			}
			switch unit := fields[j+1]; unit {
			case "B/op":
				s.BytesPerOp = int64(val)
			case "allocs/op":
				s.AllocsPerOp = int64(val)
			default:
				if s.Metrics == nil {
					s.Metrics = metricMap{}
				}
				s.Metrics[unit] = val
			}
		}
		key := [2]string{curPkg, m[1]}
		i, ok := index[key]
		if !ok {
			i = len(rep.Benchmarks)
			index[key] = i
			rep.Benchmarks = append(rep.Benchmarks, Benchmark{Name: m[1], Package: curPkg})
		}
		rep.Benchmarks[i].Samples = append(rep.Benchmarks[i].Samples, s)
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	rep.Package = strings.Join(pkgs, ",")
	if len(pkgs) > 1 {
		for i := range rep.Benchmarks {
			b := &rep.Benchmarks[i]
			if slash := strings.LastIndex(b.Package, "/"); slash >= 0 {
				b.Name = b.Package[slash+1:] + "." + b.Name
			}
		}
	} else {
		// Single-package reports keep the historical shape: plain names, no
		// per-benchmark package field.
		for i := range rep.Benchmarks {
			rep.Benchmarks[i].Package = ""
		}
	}
	for i := range rep.Benchmarks {
		b := &rep.Benchmarks[i]
		min, sum := 0.0, 0.0
		for j, s := range b.Samples {
			if j == 0 || s.NsPerOp < min {
				min = s.NsPerOp
			}
			sum += s.NsPerOp
		}
		b.MinNsPerOp = min
		b.MeanNsPerOp = sum / float64(len(b.Samples))
		b.AllocsPerOp = b.Samples[0].AllocsPerOp
		sums := map[string]float64{}
		counts := map[string]int{}
		for _, s := range b.Samples {
			for unit, v := range s.Metrics {
				sums[unit] += v
				counts[unit]++
			}
		}
		if len(sums) > 0 {
			b.Metrics = metricMap{}
			for unit, total := range sums {
				b.Metrics[unit] = total / float64(counts[unit])
			}
		}
	}
	return rep, nil
}

// compareReports checks fresh mean_ns_per_op numbers against a baseline:
// a regression beyond tolerance (fractional, e.g. 0.10 = +10%) or a
// baseline benchmark missing from the fresh run is a violation.
// Benchmarks only present in the fresh run are fine (new coverage).
func compareReports(baseline, fresh Report, tolerance float64) []string {
	current := map[string]Benchmark{}
	for _, b := range fresh.Benchmarks {
		current[b.Name] = b
	}
	var violations []string
	for _, base := range baseline.Benchmarks {
		got, ok := current[base.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: present in baseline but missing from this run", base.Name))
			continue
		}
		if base.MeanNsPerOp <= 0 {
			continue
		}
		ratio := got.MeanNsPerOp / base.MeanNsPerOp
		if ratio > 1+tolerance {
			violations = append(violations, fmt.Sprintf("%s: mean %.0f ns/op vs baseline %.0f ns/op (%+.1f%%, tolerance %.0f%%)",
				base.Name, got.MeanNsPerOp, base.MeanNsPerOp, (ratio-1)*100, tolerance*100))
		}
	}
	return violations
}

// gitCommit returns the current HEAD hash, or "" when not in a git
// checkout (the report is still useful without it).
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return string(bytes.TrimSpace(out))
}

func main() {
	bench := flag.String("bench", "BenchmarkCyclesPerSecond|BenchmarkLargeN", "benchmark regex passed to go test -bench")
	pkg := flag.String("pkg", "./internal/simulator", "package(s) to benchmark, comma-separated")
	count := flag.Int("count", 5, "samples per benchmark (go test -count)")
	out := flag.String("o", "BENCH_simulator.json", "output file (- for stdout)")
	compare := flag.String("compare", "", "baseline report to compare against; fail on mean_ns_per_op regressions")
	tolerance := flag.Float64("tolerance", 0.10, "fractional regression allowed by -compare (0.10 = +10%)")
	flag.Parse()
	if err := run(*bench, *pkg, *count, *out, *compare, *tolerance); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(bench, pkg string, count int, out, compare string, tolerance float64) error {
	args := []string{"test", "-run", "^$",
		"-bench", bench, "-benchmem", "-count", strconv.Itoa(count)}
	args = append(args, strings.Split(pkg, ",")...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go test: %w", err)
	}
	rep, err := parse(strings.NewReader(string(raw)))
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results matched %q in %s", bench, pkg)
	}
	rep.GoVersion = runtime.Version()
	rep.Commit = gitCommit()
	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if out == "-" {
		if _, err := os.Stdout.Write(doc); err != nil {
			return err
		}
	} else if err := os.WriteFile(out, doc, 0o644); err != nil {
		return err
	}
	if compare == "" {
		return nil
	}
	baseRaw, err := os.ReadFile(compare)
	if err != nil {
		return fmt.Errorf("compare baseline: %w", err)
	}
	var baseline Report
	if err := json.Unmarshal(baseRaw, &baseline); err != nil {
		return fmt.Errorf("compare baseline %s: %w", compare, err)
	}
	if violations := compareReports(baseline, rep, tolerance); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "benchjson: regression:", v)
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%% of %s", len(violations), tolerance*100, compare)
	}
	fmt.Fprintf(os.Stderr, "benchjson: no regressions beyond %.0f%% against %s\n", tolerance*100, compare)
	return nil
}
