// Command benchjson runs the simulator benchmark suite and writes the
// parsed results as JSON, so CI (or a developer) can track the tracked
// numbers — ns/op and allocs/op of the cycle loop — across commits
// without scraping `go test -bench` text by hand.
//
// Usage:
//
//	benchjson [-bench regex] [-pkg path] [-count N] [-o file]
//
// Defaults run BenchmarkCyclesPerSecond in ./internal/simulator with
// -count 5 and write BENCH_simulator.json. With -count > 1 every sample
// is kept and each benchmark also reports the min and mean ns/op across
// its samples (min is the stable number to compare across machines).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// Sample is one `go test -bench` result line.
type Sample struct {
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Benchmark aggregates the samples of one benchmark name.
type Benchmark struct {
	Name        string   `json:"name"`
	Samples     []Sample `json:"samples"`
	MinNsPerOp  float64  `json:"min_ns_per_op"`
	MeanNsPerOp float64  `json:"mean_ns_per_op"`
	AllocsPerOp int64    `json:"allocs_per_op"`
}

// Report is the emitted JSON document.
type Report struct {
	Package    string      `json:"package"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkCyclesPerSecond/N=8/static-C-4   500   56556 ns/op   25360 B/op   13 allocs/op
//
// The trailing -4 is GOMAXPROCS and is stripped from the name; the B/op
// and allocs/op columns are only present under -benchmem.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parse reads `go test -bench` output and groups the result lines by
// benchmark name, preserving first-seen order. Header lines (goos, goarch,
// cpu, pkg) fill the report metadata.
func parse(r io.Reader) (Report, error) {
	var rep Report
	index := map[string]int{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			rep.Package = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		runs, err := strconv.Atoi(m[2])
		if err != nil {
			return rep, fmt.Errorf("benchjson: bad runs in %q: %v", line, err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return rep, fmt.Errorf("benchjson: bad ns/op in %q: %v", line, err)
		}
		s := Sample{Runs: runs, NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: -1}
		if m[4] != "" {
			s.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			s.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		i, ok := index[m[1]]
		if !ok {
			i = len(rep.Benchmarks)
			index[m[1]] = i
			rep.Benchmarks = append(rep.Benchmarks, Benchmark{Name: m[1]})
		}
		rep.Benchmarks[i].Samples = append(rep.Benchmarks[i].Samples, s)
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	for i := range rep.Benchmarks {
		b := &rep.Benchmarks[i]
		min, sum := 0.0, 0.0
		for j, s := range b.Samples {
			if j == 0 || s.NsPerOp < min {
				min = s.NsPerOp
			}
			sum += s.NsPerOp
		}
		b.MinNsPerOp = min
		b.MeanNsPerOp = sum / float64(len(b.Samples))
		b.AllocsPerOp = b.Samples[0].AllocsPerOp
	}
	return rep, nil
}

func main() {
	bench := flag.String("bench", "BenchmarkCyclesPerSecond", "benchmark regex passed to go test -bench")
	pkg := flag.String("pkg", "./internal/simulator", "package to benchmark")
	count := flag.Int("count", 5, "samples per benchmark (go test -count)")
	out := flag.String("o", "BENCH_simulator.json", "output file (- for stdout)")
	flag.Parse()
	if err := run(*bench, *pkg, *count, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(bench, pkg string, count int, out string) error {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", bench, "-benchmem", "-count", strconv.Itoa(count), pkg)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go test: %w", err)
	}
	rep, err := parse(strings.NewReader(string(raw)))
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results matched %q in %s", bench, pkg)
	}
	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(doc)
		return err
	}
	return os.WriteFile(out, doc, 0o644)
}
