package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"iadm/internal/routesvc"
)

func testBackend(t *testing.T) *httptest.Server {
	t.Helper()
	m := routesvc.NewMulti(routesvc.Config{
		N:         64,
		Admission: routesvc.AdmissionConfig{Disabled: true},
	}, 8)
	srv := httptest.NewServer(routesvc.NewMultiHandler(m))
	t.Cleanup(func() {
		srv.Close()
		m.Drain()
	})
	return srv
}

// TestServeRouteAndDrain boots two backends and the router on an
// ephemeral port, routes through the router, then delivers SIGTERM and
// checks it drains and exits cleanly, portfile intact throughout.
func TestServeRouteAndDrain(t *testing.T) {
	b0, b1 := testBackend(t), testBackend(t)
	portFile := filepath.Join(t.TempDir(), "port")
	cfg := fleetConfig{
		backends:     b0.URL + ", " + b1.URL,
		addr:         "127.0.0.1:0",
		portFile:     portFile,
		drainTimeout: 5 * time.Second,
		probeWait:    5 * time.Second,
		retryBudget:  0.1,
	}
	stop := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	var logs strings.Builder
	done := make(chan error, 1)
	go func() { done <- serve(cfg, &logs, stop, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("serve exited early: %v", err)
	}
	written, err := os.ReadFile(portFile)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(written)); got != addr {
		t.Errorf("portfile has %q, listener bound %q", got, addr)
	}

	resp, err := http.Get("http://" + addr + "/route?src=3&dst=9&scheme=ssdt&net=p0")
	if err != nil {
		t.Fatal(err)
	}
	var route routesvc.RouteJSON
	if err := json.NewDecoder(resp.Body).Decode(&route); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || route.Tag == "" {
		t.Fatalf("route via router: status %d, %+v", resp.StatusCode, route)
	}
	if route.Net != "p0" {
		t.Errorf("router dropped the net echo: %+v", route)
	}

	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("router did not exit after SIGTERM")
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("router still accepting connections after drain")
	}
	if !strings.Contains(logs.String(), "drained") {
		t.Errorf("logs missing drain line:\n%s", logs.String())
	}
}

func TestServeRejectsBadConfig(t *testing.T) {
	stop := make(chan os.Signal)
	if err := serve(fleetConfig{addr: "127.0.0.1:0"}, io.Discard, stop, nil); err == nil {
		t.Error("accepted an empty backend list")
	}
	// A probe that can never succeed must fail once -probe-wait expires.
	cfg := fleetConfig{
		backends:  "http://127.0.0.1:1",
		addr:      "127.0.0.1:0",
		probeWait: 100 * time.Millisecond,
	}
	if err := serve(cfg, io.Discard, stop, nil); err == nil {
		t.Error("accepted an unreachable backend")
	}
}
