// Command iadmfleet is the IADM fleet router: a thin HTTP proxy that
// partitions named networks across several iadmd backends with a
// consistent-hash ring (virtual nodes, per-partition replica sets) and
// re-exposes the single-daemon wire API — so clients, load generators
// and dashboards built for one iadmd talk to a whole fleet unchanged.
//
// Usage:
//
//	iadmfleet -backends URL[,URL...] [-replicas R] [-vnodes V]
//	          [-addr host:port] [-portfile F] [-hedge-after D]
//	          [-retry-budget F] [-retry-burst K] [-timeout D]
//	          [-probe-wait D]
//
// Request placement: a partition (named network) lives on R distinct
// backends; within a partition each (src,dst) pair has a stable owner
// replica so repeated requests hit a warm tag cache. /route/batch is
// scatter-gathered — split by owning backend, fanned out concurrently,
// merged back in input order so each backend's 64-lane sliced kernels
// see dense lane blocks. /fault and /repair fan out to EVERY replica of
// the partition and require every ack (Theorems 3.1/3.2: a replica left
// un-invalidated would keep serving stale TSDT tags).
//
// -hedge-after arms hedged single routes (a second attempt at the next
// replica when the first is slow); -retry-budget bounds router-initiated
// retries to a fraction of observed traffic so a dying backend cannot
// turn the router into a load amplifier.
//
// At startup the router probes every backend's /healthz (retrying up to
// -probe-wait) and requires one common network size N; a fleet over
// mismatched sizes would silently mis-route, so mismatch is fatal.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"iadm/internal/buildinfo"
	"iadm/internal/fleet"
)

type fleetConfig struct {
	backends     string
	replicas     int
	vnodes       int
	addr         string
	portFile     string
	drainTimeout time.Duration
	probeWait    time.Duration

	hedgeAfter  time.Duration
	retryBudget float64
	retryBurst  int
	timeout     time.Duration
}

func main() {
	cfg := fleetConfig{}
	flag.StringVar(&cfg.backends, "backends", "", "comma-separated backend base URLs (required)")
	flag.IntVar(&cfg.replicas, "replicas", 0, "replicas per partition (0 = min(2, backends))")
	flag.IntVar(&cfg.vnodes, "vnodes", 0, "virtual nodes per backend on the hash ring (0 = 64)")
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8090", "listen address (port 0 picks a free port)")
	flag.StringVar(&cfg.portFile, "portfile", "", "write the bound host:port to this file once listening")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 10*time.Second, "maximum time to wait for in-flight requests on shutdown")
	flag.DurationVar(&cfg.probeWait, "probe-wait", 10*time.Second, "how long to keep retrying the startup backend probe")
	flag.DurationVar(&cfg.hedgeAfter, "hedge-after", 0, "hedge a single /route to the next replica after this long (0 disables)")
	flag.Float64Var(&cfg.retryBudget, "retry-budget", 0.1, "retries allowed as a fraction of observed requests (0 disables retries)")
	flag.IntVar(&cfg.retryBurst, "retry-burst", 0, "constant retry headroom on top of the budget fraction (0 = 10)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "per-backend-call timeout (0 = 10s)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version("iadmfleet"))
		return
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := serve(cfg, os.Stderr, stop, nil); err != nil {
		fmt.Fprintln(os.Stderr, "iadmfleet:", err)
		os.Exit(1)
	}
}

func splitBackends(s string) []string {
	var out []string
	for _, b := range strings.Split(s, ",") {
		if b = strings.TrimSpace(b); b != "" {
			// Bare host:port entries (e.g. read from an iadmd portfile)
			// get the default scheme.
			if !strings.Contains(b, "://") {
				b = "http://" + b
			}
			out = append(out, strings.TrimSuffix(b, "/"))
		}
	}
	return out
}

// serve runs the router until stop delivers a signal. ready, when
// non-nil, receives the bound address once serving; tests use it in
// place of the port file.
func serve(cfg fleetConfig, logw io.Writer, stop <-chan os.Signal, ready chan<- string) error {
	backends := splitBackends(cfg.backends)
	if len(backends) == 0 {
		return fmt.Errorf("-backends is required (comma-separated base URLs)")
	}
	rt, err := fleet.New(fleet.Config{
		Backends:      backends,
		Replicas:      cfg.replicas,
		Vnodes:        cfg.vnodes,
		HedgeAfter:    cfg.hedgeAfter,
		RetryFraction: cfg.retryBudget,
		RetryBurst:    cfg.retryBurst,
		Timeout:       cfg.timeout,
	})
	if err != nil {
		return err
	}
	// Backends may still be booting (the smoke harness starts everything
	// at once), so retry the probe until the deadline.
	deadline := time.Now().Add(cfg.probeWait)
	for {
		if err = rt.Probe(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(50 * time.Millisecond)
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	if cfg.portFile != "" {
		if err := writeFileAtomic(cfg.portFile, addr+"\n"); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(logw, "iadmfleet: routing N=%d across %d backends (R=%d) on http://%s\n",
		rt.N(), len(backends), rt.Ring().Replicas(), addr)
	if ready != nil {
		ready <- addr
	}

	srv := &http.Server{Handler: rt}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Fprintf(logw, "iadmfleet: %v: draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		defer cancel()
		shutErr := srv.Shutdown(ctx)
		rt.Drain()
		<-errc // http.ErrServerClosed
		m := rt.Metrics()
		var proxied uint64
		for _, bk := range m.Fleet.Backends {
			proxied += bk.Requests
		}
		fmt.Fprintf(logw, "iadmfleet: drained; proxied %d backend calls (%d batches, %d sub-batches, %d hedges, %d retries, %d scrape errors)\n",
			proxied, m.Fleet.Batches, m.Fleet.SubBatches, m.Fleet.Hedges, m.Fleet.Retries, m.Fleet.ScrapeErrors)
		return shutErr
	}
}

// writeFileAtomic writes via a temp file + rename so a polling reader
// never sees a half-written address.
func writeFileAtomic(path, content string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".iadmfleet-port-*")
	if err != nil {
		return err
	}
	if _, err := tmp.WriteString(content); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
