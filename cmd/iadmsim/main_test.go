package main

import (
	"os"
	"strings"
	"testing"

	"iadm/internal/topology"
)

func runOK(t *testing.T, N int, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(&sb, defaultOptions(N), args); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func runErr(t *testing.T, N int, args ...string) {
	t.Helper()
	var sb strings.Builder
	if err := run(&sb, defaultOptions(N), args); err == nil {
		t.Fatalf("run(%v) unexpectedly succeeded:\n%s", args, sb.String())
	}
}

func TestDraw(t *testing.T) {
	out := runOK(t, 8, "draw")
	if !strings.Contains(out, "IADM network, N=8") {
		t.Errorf("draw output missing header:\n%s", out)
	}
}

func TestICubeCommand(t *testing.T) {
	out := runOK(t, 8, "icube")
	if !strings.Contains(out, "ICube network, N=8") {
		t.Errorf("icube output missing header:\n%s", out)
	}
}

func TestPathsCommand(t *testing.T) {
	out := runOK(t, 8, "paths", "1", "0")
	if !strings.Contains(out, "4 link-paths") {
		t.Errorf("paths output wrong:\n%s", out)
	}
}

func TestRouteCommand(t *testing.T) {
	out := runOK(t, 8, "route", "1", "0")
	if !strings.Contains(out, "TSDT tag 000000 from source 1") {
		t.Errorf("route output wrong:\n%s", out)
	}
}

func TestRerouteCommand(t *testing.T) {
	out := runOK(t, 8, "reroute", "1", "0", "0:1:-", "1:2:-")
	if !strings.Contains(out, "rerouting tag: 000110") {
		t.Errorf("reroute output wrong:\n%s", out)
	}
	if !strings.Contains(out, "4∈S_2") {
		t.Errorf("reroute path wrong:\n%s", out)
	}
}

func TestRerouteNoPath(t *testing.T) {
	// s = d = 5, straight blocked: no path.
	runErr(t, 8, "reroute", "5", "5", "1:5:0")
}

func TestSubgraphCommand(t *testing.T) {
	out := runOK(t, 8, "subgraph", "1")
	if !strings.Contains(out, "relabeling j -> j+1") {
		t.Errorf("subgraph output wrong:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	runErr(t, 7, "draw")                        // bad N
	runErr(t, 8)                                // missing command
	runErr(t, 8, "bogus")                       // unknown command
	runErr(t, 8, "paths", "1")                  // missing dest
	runErr(t, 8, "paths", "9", "0")             // bad source
	runErr(t, 8, "paths", "0", "x")             // bad dest
	runErr(t, 8, "reroute", "1", "0", "weird")  // bad link spec
	runErr(t, 8, "reroute", "1", "0", "9:0:-")  // bad stage
	runErr(t, 8, "reroute", "1", "0", "0:99:-") // bad switch
	runErr(t, 8, "reroute", "1", "0", "0:0:x")  // bad kind
	runErr(t, 8, "reroute", "1")                // short args
	runErr(t, 8, "subgraph")                    // missing x
	runErr(t, 8, "subgraph", "9")               // out of range
	runErr(t, 8, "subgraph", "q")               // not a number
}

func TestParseLinkKinds(t *testing.T) {
	p := topology.MustParams(8)
	for spec, kind := range map[string]topology.LinkKind{
		"1:2:-": topology.Minus,
		"1:2:0": topology.Straight,
		"1:2:+": topology.Plus,
	} {
		l, err := topology.ParseLink(p, spec)
		if err != nil {
			t.Fatalf("ParseLink(%q): %v", spec, err)
		}
		if l.Kind != kind || l.Stage != 1 || l.From != 2 {
			t.Errorf("ParseLink(%q) = %v", spec, l)
		}
	}
}

func writeScenario(t *testing.T, body string) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "scen-*.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(body); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return f.Name()
}

func TestScenarioCommand(t *testing.T) {
	path := writeScenario(t, "n 8\nlink 0 1 -\nlink 1 2 -\n")
	out := runOK(t, 8, "scenario", path, "1", "0")
	if !strings.Contains(out, "rerouting tag: 000110") {
		t.Errorf("scenario output wrong:\n%s", out)
	}
	if !strings.Contains(out, "dynamic: probes=") {
		t.Errorf("missing dynamic stats:\n%s", out)
	}
}

func TestScenarioNoPath(t *testing.T) {
	path := writeScenario(t, "n 8\nlink 1 5 0\n")
	out := runOK(t, 8, "scenario", path, "5", "5")
	if !strings.Contains(out, "no blockage-free path") {
		t.Errorf("expected no-path report:\n%s", out)
	}
}

func TestConnectivityCommand(t *testing.T) {
	path := writeScenario(t, "n 8\nlink 1 5 0\n")
	out := runOK(t, 8, "connectivity", path)
	if !strings.Contains(out, "pairs routable") {
		t.Errorf("connectivity output wrong:\n%s", out)
	}
	if strings.Contains(out, "100.0%") {
		t.Errorf("straight fault should reduce connectivity:\n%s", out)
	}
}

func TestSimulateCommand(t *testing.T) {
	out := runOK(t, 8, "simulate", "adaptive", "0.3")
	if !strings.Contains(out, "throughput") {
		t.Errorf("simulate output wrong:\n%s", out)
	}
	runErr(t, 8, "simulate", "bogus", "0.3")
	runErr(t, 8, "simulate", "static", "x")
	runErr(t, 8, "simulate", "static")
}

func TestSimulateReplicas(t *testing.T) {
	out := runOK(t, 8, "simulate", "adaptive", "0.3", "4")
	if strings.Count(out, "seed ") != 4 {
		t.Errorf("want 4 per-seed lines:\n%s", out)
	}
	if !strings.Contains(out, "over 4 replicas") {
		t.Errorf("missing aggregate line:\n%s", out)
	}
	// The fan-out must not depend on worker count: explicit workers give
	// the same report.
	var sb strings.Builder
	o := defaultOptions(8)
	o.workers, o.intra = 3, 2
	if err := run(&sb, o, []string{"simulate", "adaptive", "0.3", "4"}); err != nil {
		t.Fatal(err)
	}
	if sb.String() != out {
		t.Errorf("workers=3 report differs from workers=0:\n%s\nvs\n%s", sb.String(), out)
	}
	runErr(t, 8, "simulate", "adaptive", "0.3", "0")
	runErr(t, 8, "simulate", "adaptive", "0.3", "zz")
	runErr(t, 8, "simulate", "adaptive", "0.3", "4", "5")
}

func TestWormholeCommand(t *testing.T) {
	out := runOK(t, 8, "wormhole", "adaptive", "0.4")
	if !strings.Contains(out, "4 flits/packet, 2 lanes x 2 flits") {
		t.Errorf("wormhole output missing operating point:\n%s", out)
	}
	if !strings.Contains(out, "throughput") || !strings.Contains(out, "flit") {
		t.Errorf("wormhole output wrong:\n%s", out)
	}
	runErr(t, 8, "wormhole", "bogus", "0.4")
	runErr(t, 8, "wormhole", "static", "x")
	runErr(t, 8, "wormhole", "static")
	runErr(t, 8, "wormhole", "static", "0.4", "0")
}

func TestWormholeSeedFlag(t *testing.T) {
	o1 := defaultOptions(8)
	o2 := defaultOptions(8)
	o2.seed = 99
	var a, b, c strings.Builder
	if err := run(&a, o1, []string{"wormhole", "adaptive", "0.4"}); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, o2, []string{"wormhole", "adaptive", "0.4"}); err != nil {
		t.Fatal(err)
	}
	if err := run(&c, o1, []string{"wormhole", "adaptive", "0.4"}); err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Errorf("different seeds gave identical reports:\n%s", a.String())
	}
	if a.String() != c.String() {
		t.Errorf("same seed gave different reports:\n%s\nvs\n%s", a.String(), c.String())
	}
}

func TestWormholeReplicas(t *testing.T) {
	out := runOK(t, 8, "wormhole", "adaptive", "0.4", "3")
	if strings.Count(out, "seed ") != 3 {
		t.Errorf("want 3 per-seed lines:\n%s", out)
	}
	if !strings.Contains(out, "over 3 replicas") {
		t.Errorf("missing aggregate line:\n%s", out)
	}
}

func TestWormholeTrafficFlag(t *testing.T) {
	for _, tr := range []string{"uniform", "hotspot", "bitcomplement", "tornado"} {
		o := defaultOptions(8)
		o.traffic = tr
		var sb strings.Builder
		if err := run(&sb, o, []string{"wormhole", "adaptive", "0.4"}); err != nil {
			t.Fatalf("traffic %s: %v", tr, err)
		}
	}
	o := defaultOptions(8)
	o.traffic = "bogus"
	var sb strings.Builder
	if err := run(&sb, o, []string{"wormhole", "adaptive", "0.4"}); err == nil {
		t.Error("accepted unknown traffic pattern")
	}
}

func TestWormholeScenario(t *testing.T) {
	path := writeScenario(t, "n 8\nlanes 4\ndepth 3\nlink 1 5 0\n")
	o := defaultOptions(8)
	o.scenPath = path
	var sb strings.Builder
	if err := run(&sb, o, []string{"wormhole", "adaptive", "0.4"}); err != nil {
		t.Fatal(err)
	}
	// The scenario's lanes/depth directives override the flag defaults.
	if !strings.Contains(sb.String(), "4 lanes x 3 flits") {
		t.Errorf("scenario lanes/depth not applied:\n%s", sb.String())
	}
	// A scenario for a different size is rejected rather than silently
	// resized.
	o16 := defaultOptions(16)
	o16.scenPath = path
	var sb16 strings.Builder
	if err := run(&sb16, o16, []string{"wormhole", "adaptive", "0.4"}); err == nil {
		t.Error("accepted a scenario for the wrong network size")
	}
	o.scenPath = "/nonexistent/file"
	if err := run(&sb, o, []string{"wormhole", "adaptive", "0.4"}); err == nil {
		t.Error("accepted a missing scenario file")
	}
}

// TestPacketModeRejectsWormholeScenario: scenarios pinning a wormhole
// operating point have no packet-mode meaning; the packet-mode scenario
// consumers must refuse them rather than silently ignore the directives.
func TestPacketModeRejectsWormholeScenario(t *testing.T) {
	path := writeScenario(t, "n 8\nlanes 4\nlink 1 5 0\n")
	runErr(t, 8, "scenario", path, "1", "0")
	runErr(t, 8, "connectivity", path)
}

func TestEquivCommand(t *testing.T) {
	out := runOK(t, 8, "equiv")
	if strings.Count(out, "isomorphic to generalized-cube: true") != 5 {
		t.Errorf("equiv output wrong:\n%s", out)
	}
}

func TestScenarioFileErrors(t *testing.T) {
	runErr(t, 8, "scenario", "/nonexistent/file", "1", "0")
	runErr(t, 8, "scenario")
	bad := writeScenario(t, "garbage\n")
	runErr(t, 8, "scenario", bad, "1", "0")
	runErr(t, 8, "connectivity", "/nonexistent/file")
	runErr(t, 8, "connectivity")
}

func TestMulticastCommand(t *testing.T) {
	out := runOK(t, 16, "multicast", "5", "0", "4", "8", "12")
	if !strings.Contains(out, "tree links: 8 (unicasts would use 16)") {
		t.Errorf("multicast output wrong:\n%s", out)
	}
	runErr(t, 16, "multicast", "5")
	runErr(t, 16, "multicast", "99", "0")
	runErr(t, 16, "multicast", "0", "99")
}

func TestReliabilityCommand(t *testing.T) {
	out := runOK(t, 16, "reliability", "1", "0", "0.05")
	if !strings.Contains(out, "= 0.983399") {
		t.Errorf("reliability output wrong:\n%s", out)
	}
	if !strings.Contains(out, "ICube reference: 0.814506") {
		t.Errorf("missing ICube reference:\n%s", out)
	}
	runErr(t, 16, "reliability", "1", "0")
	runErr(t, 16, "reliability", "1", "0", "zzz")
	runErr(t, 16, "reliability", "1", "0", "1.5")
}

func TestExplainCommand(t *testing.T) {
	out := runOK(t, 8, "explain", "1", "0", "1:0:0")
	if !strings.Contains(out, "Corollary 4.2") || !strings.Contains(out, "done") {
		t.Errorf("explain output wrong:\n%s", out)
	}
	out = runOK(t, 8, "explain", "5", "5", "1:5:0")
	if !strings.Contains(out, "FAIL") {
		t.Errorf("explain FAIL narration missing:\n%s", out)
	}
	runErr(t, 8, "explain", "1")
	runErr(t, 8, "explain", "1", "0", "zz")
}
