// Command iadmsim is an interactive front end to the IADM routing library:
// it draws networks, enumerates routing paths, routes messages with the
// paper's SSDT/TSDT destination tag schemes, and runs the universal REROUTE
// algorithm around blocked links.
//
// Usage:
//
//	iadmsim [-n N] draw                     # print the IADM network
//	iadmsim [-n N] icube                    # print the ICube network
//	iadmsim [-n N] paths <s> <d>            # all routing paths s -> d
//	iadmsim [-n N] route <s> <d>            # TSDT route with all-C states
//	iadmsim [-n N] reroute <s> <d> <link>... # REROUTE around blocked links
//	iadmsim [-n N] subgraph <x>             # cube subgraph for relabeling x
//	iadmsim scenario <file> <s> <d>         # REROUTE under a scenario file
//	iadmsim [-n N] connectivity <file>      # pair connectivity under a scenario
//	iadmsim [-n N] [-workers K] simulate <policy> <load> [replicas]
//	                                        # packet simulation (static|random|adaptive);
//	                                        # replicas > 1 fans seeds out over K workers
//	iadmsim [-n N] [-lanes K] [-depth F] [-flits P] [-traffic T] [-scenario file] wormhole <policy> <load> [replicas]
//	                                        # flit-level wormhole simulation with K virtual
//	                                        # lanes of F flits per link and P flits per packet
//	iadmsim [-n N] equiv                    # cube-type family equivalence table
//	iadmsim [-n N] multicast <s> <d>...     # one-to-many routing tree
//	iadmsim [-n N] reliability <s> <d> <q>  # exact pair reliability at link-failure prob q
//	iadmsim [-n N] explain <s> <d> <link>...# narrated REROUTE run
//
// Links are written stage:from:kind with kind one of -, 0, + (e.g. 1:2:-
// is the -2^1 link of switch 2 at stage 1). Scenario files use the format
// of internal/scenario (n/link/switch directives, plus lanes/depth for
// the wormhole command; scenarios carrying lanes/depth are rejected by
// the packet-mode scenario and connectivity commands). The -seed flag
// decorrelates any simulation command; replicas use seeds seed..seed+R-1.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"iadm/internal/analysis"
	"iadm/internal/blockage"
	"iadm/internal/buildinfo"
	"iadm/internal/core"
	"iadm/internal/cubefamily"
	"iadm/internal/multicast"
	"iadm/internal/paths"
	"iadm/internal/profiling"
	"iadm/internal/render"
	"iadm/internal/scenario"
	"iadm/internal/simulator"
	"iadm/internal/stats"
	"iadm/internal/subgraph"
	"iadm/internal/topology"
	"iadm/internal/wormhole"
)

// options carries the flag-settable knobs into run; the zero value plus
// defaultOptions() matches the CLI defaults.
type options struct {
	N        int
	workers  int
	intra    int
	seed     int64
	lanes    int
	depth    int
	flits    int
	traffic  string
	scenPath string // wormhole command: fault scenario file
}

// defaultOptions mirrors the CLI flag defaults, for tests that call run
// directly.
func defaultOptions(N int) options {
	return options{N: N, seed: 1, lanes: 2, depth: 2, flits: 4, traffic: "uniform"}
}

func main() {
	n := flag.Int("n", 8, "network size N (power of two)")
	workers := flag.Int("workers", 0, "worker goroutines for multi-run commands (0 = GOMAXPROCS/intra)")
	intra := flag.Int("intra", 0, "worker goroutines inside each simulation run (0/1 = sequential; results are bit-identical for every value)")
	seed := flag.Int64("seed", 1, "PRNG seed for simulation commands (replicas use seed..seed+R-1)")
	lanes := flag.Int("lanes", 2, "wormhole: virtual lanes per link (1..64)")
	depth := flag.Int("depth", 2, "wormhole: flit buffer depth per lane")
	flits := flag.Int("flits", 4, "wormhole: flits per packet")
	traffic := flag.String("traffic", "uniform", "wormhole traffic pattern (uniform|hotspot|bitcomplement|tornado)")
	scenPath := flag.String("scenario", "", "wormhole: fault scenario file (n/link/switch and optional lanes/depth directives)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the command to this file")
	memprofile := flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version("iadmsim"))
		return
	}
	o := options{
		N: *n, workers: *workers, intra: *intra, seed: *seed,
		lanes: *lanes, depth: *depth, flits: *flits,
		traffic: *traffic, scenPath: *scenPath,
	}
	err := profiling.WithProfiles(*cpuprofile, *memprofile, func() error {
		return run(os.Stdout, o, flag.Args())
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "iadmsim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, o options, args []string) error {
	N, workers, intra := o.N, o.workers, o.intra
	p, err := topology.NewParams(N)
	if err != nil {
		return err
	}
	if len(args) == 0 {
		return fmt.Errorf("missing command (draw, icube, paths, route, reroute, subgraph)")
	}
	switch args[0] {
	case "draw":
		fmt.Fprint(w, render.IADMTable(N))
		return nil
	case "icube":
		fmt.Fprint(w, render.ICubeTable(N))
		return nil
	case "paths":
		s, d, err := parsePair(p, args[1:])
		if err != nil {
			return err
		}
		fmt.Fprint(w, render.AllPathsFigure(p, s, d))
		return nil
	case "route":
		s, d, err := parsePair(p, args[1:])
		if err != nil {
			return err
		}
		tag, err := core.NewTag(p, d)
		if err != nil {
			return err
		}
		fmt.Fprint(w, render.TagTrace(p, s, tag))
		fmt.Fprint(w, render.PathGrid(tag.Follow(p, s)))
		return nil
	case "reroute":
		if len(args) < 3 {
			return fmt.Errorf("usage: reroute <s> <d> <link>...")
		}
		s, d, err := parsePair(p, args[1:3])
		if err != nil {
			return err
		}
		blk := blockage.NewSet(p)
		for _, spec := range args[3:] {
			l, err := topology.ParseLink(p, spec)
			if err != nil {
				return err
			}
			blk.Block(l)
		}
		fmt.Fprintf(w, "blocked links: %s\n", blk)
		tag, path, err := core.Reroute(p, blk, s, core.MustTag(p, d))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "rerouting tag: %s\npath: %s\n", tag, render.PathLine(path))
		fmt.Fprint(w, render.PathGrid(path))
		return nil
	case "subgraph":
		if len(args) != 2 {
			return fmt.Errorf("usage: subgraph <x>")
		}
		x, err := strconv.Atoi(args[1])
		if err != nil || x < 0 || x >= N {
			return fmt.Errorf("invalid relabeling %q", args[1])
		}
		fmt.Fprintf(w, "cube subgraph for relabeling j -> j+%d:\n", x)
		fmt.Fprint(w, render.SubgraphTable(subgraph.RelabeledState(p, x)))
		return nil
	case "scenario":
		if len(args) != 4 {
			return fmt.Errorf("usage: scenario <file> <s> <d>")
		}
		sc, err := loadPacketScenario(args[1])
		if err != nil {
			return err
		}
		s, d, err := parsePair(sc.Params, args[2:])
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "scenario (N=%d): %d blocked links\n", sc.Params.Size(), sc.Blocked.Count())
		tag, path, rerr := core.Reroute(sc.Params, sc.Blocked, s, core.MustTag(sc.Params, d))
		if rerr != nil {
			if errors.Is(rerr, core.ErrNoPath) {
				fmt.Fprintf(w, "no blockage-free path from %d to %d exists\n", s, d)
				return nil
			}
			return rerr
		}
		fmt.Fprintf(w, "rerouting tag: %s\npath: %s\n", tag, render.PathLine(path))
		res, derr := core.DynamicReroute(sc.Params, sc.Blocked, s, d)
		if derr == nil {
			fmt.Fprintf(w, "dynamic: probes=%d backtrackHops=%d replans=%d\n",
				res.Probes, res.BacktrackHops, res.Replans)
		}
		return nil
	case "connectivity":
		if len(args) != 2 {
			return fmt.Errorf("usage: connectivity <file>")
		}
		sc, err := loadPacketScenario(args[1])
		if err != nil {
			return err
		}
		NN := sc.Params.Size()
		ok := 0
		for s := 0; s < NN; s++ {
			for d := 0; d < NN; d++ {
				if paths.Exists(sc.Params, s, d, sc.Blocked) {
					ok++
				}
			}
		}
		fmt.Fprintf(w, "connectivity: %d/%d pairs routable (%.1f%%)\n", ok, NN*NN, 100*float64(ok)/float64(NN*NN))
		return nil
	case "simulate":
		if len(args) < 3 || len(args) > 4 {
			return fmt.Errorf("usage: simulate <static|random|adaptive> <load> [replicas]")
		}
		pol, load, replicas, err := parseSimArgs(args)
		if err != nil {
			return err
		}
		base := simulator.Config{
			N: N, Policy: pol, Load: load, QueueCap: 4,
			Cycles: 5000, Warmup: 500, Seed: o.seed, Traffic: simulator.Uniform,
			IntraWorkers: intra,
		}
		if replicas == 1 {
			m, err := simulator.Run(base)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "policy %s load %.2f: throughput %.4f, latency %s, maxQueue %d, refused %d\n",
				pol, load, m.Throughput, m.Latency.String(), m.MaxQueue, m.Refused)
			return nil
		}
		// Independent seeds fanned out over the worker pool; results come
		// back in seed order regardless of scheduling.
		ms, err := simulator.Sweep(base, replicas, workers, nil)
		if err != nil {
			return err
		}
		var tput, lat stats.Sample
		var pooled stats.Stream
		for i, m := range ms {
			fmt.Fprintf(w, "seed %d: throughput %.4f, latency %s\n", base.Seed+int64(i), m.Throughput, m.Latency.String())
			tput.Add(m.Throughput)
			lat.Add(m.Latency.Mean())
			pooled.Merge(&m.Latency)
		}
		fmt.Fprintf(w, "policy %s load %.2f over %d replicas: throughput %.4f ± %.4f, mean latency %.2f ± %.2f\n",
			pol, load, replicas, tput.Mean(), tput.StdDev(), lat.Mean(), lat.StdDev())
		// Per-packet latency pooled across replicas (Chan's parallel-moments
		// merge), versus the per-replica means above.
		fmt.Fprintf(w, "pooled latency: %s\n", pooled.String())
		return nil
	case "wormhole":
		if len(args) < 3 || len(args) > 4 {
			return fmt.Errorf("usage: wormhole <static|random|adaptive> <load> [replicas]")
		}
		pol, load, replicas, err := parseSimArgs(args)
		if err != nil {
			return err
		}
		base := wormhole.Config{
			N: N, Policy: pol, Load: load,
			PacketFlits: o.flits, Lanes: o.lanes, LaneDepth: o.depth,
			Cycles: 5000, Warmup: 500, Seed: o.seed,
			IntraWorkers: intra,
		}
		switch o.traffic {
		case "uniform":
			base.Traffic = simulator.Uniform
		case "hotspot":
			// A mild hotspot: destination 0 draws an extra 20% of traffic.
			base.Traffic = simulator.Hotspot
			base.HotspotDest = 0
			base.HotspotFrac = 0.2
		case "bitcomplement":
			base.Traffic = simulator.BitComplementTraffic
		case "tornado":
			base.Traffic = simulator.Tornado
		default:
			return fmt.Errorf("unknown traffic pattern %q (want uniform, hotspot, bitcomplement or tornado)", o.traffic)
		}
		if o.scenPath != "" {
			sc, err := loadScenario(o.scenPath)
			if err != nil {
				return err
			}
			if sc.Params.Size() != N {
				return fmt.Errorf("scenario is for N=%d, run invoked with -n %d", sc.Params.Size(), N)
			}
			base.Blocked = sc.Blocked
			// Scenario lanes/depth directives pin the operating point,
			// overriding the flags.
			if sc.Lanes != 0 {
				base.Lanes = sc.Lanes
			}
			if sc.LaneDepth != 0 {
				base.LaneDepth = sc.LaneDepth
			}
		}
		if replicas == 1 {
			m, err := wormhole.Run(base)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "policy %s load %.2f (%d flits/packet, %d lanes x %d flits): throughput %.4f pkt (%.4f flit), latency %s, maxLaneDepth %d, dropped %d, refused %d\n",
				pol, load, base.PacketFlits, base.Lanes, base.LaneDepth,
				m.Throughput, m.FlitThroughput, m.Latency.String(), m.MaxLaneDepth, m.Dropped, m.Refused)
			return nil
		}
		ms, err := wormhole.Sweep(base, replicas, workers, nil)
		if err != nil {
			return err
		}
		var tput, lat stats.Sample
		for i, m := range ms {
			fmt.Fprintf(w, "seed %d: throughput %.4f pkt (%.4f flit), latency %s\n",
				base.Seed+int64(i), m.Throughput, m.FlitThroughput, m.Latency.String())
			tput.Add(m.Throughput)
			lat.Add(m.Latency.Mean())
		}
		fmt.Fprintf(w, "policy %s load %.2f over %d replicas: throughput %.4f ± %.4f, mean latency %.2f ± %.2f\n",
			pol, load, replicas, tput.Mean(), tput.StdDev(), lat.Mean(), lat.StdDev())
		return nil
	case "equiv":
		base := cubefamily.MustNew(cubefamily.GeneralizedCube, N).Layered()
		for _, kind := range cubefamily.Kinds() {
			nw := cubefamily.MustNew(kind, N)
			iso := subgraph.Isomorphic(nw.Layered(), base)
			fmt.Fprintf(w, "%-18s isomorphic to generalized-cube: %v\n", kind.String(), iso)
		}
		return nil
	case "explain":
		if len(args) < 3 {
			return fmt.Errorf("usage: explain <s> <d> <link>...")
		}
		s, d, err := parsePair(p, args[1:3])
		if err != nil {
			return err
		}
		blk := blockage.NewSet(p)
		for _, spec := range args[3:] {
			l, err := topology.ParseLink(p, spec)
			if err != nil {
				return err
			}
			blk.Block(l)
		}
		_, _, trace, rerr := core.RerouteTrace(p, blk, s, core.MustTag(p, d))
		for _, line := range trace {
			fmt.Fprintln(w, line)
		}
		if rerr != nil && !errors.Is(rerr, core.ErrNoPath) {
			return rerr
		}
		return nil
	case "multicast":
		if len(args) < 3 {
			return fmt.Errorf("usage: multicast <s> <d>...")
		}
		s, err := strconv.Atoi(args[1])
		if err != nil || !p.ValidSwitch(s) {
			return fmt.Errorf("invalid source %q", args[1])
		}
		dests := make([]int, 0, len(args)-2)
		for _, a := range args[2:] {
			d, err := strconv.Atoi(a)
			if err != nil || !p.ValidSwitch(d) {
				return fmt.Errorf("invalid destination %q", a)
			}
			dests = append(dests, d)
		}
		tree, err := multicast.Route(p, s, dests, nil)
		if err != nil {
			return err
		}
		for i, links := range tree.Stages {
			fmt.Fprintf(w, "stage %d:", i)
			for _, l := range links {
				fmt.Fprintf(w, " %s", l.StringIn(p))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "tree links: %d (unicasts would use %d)\n",
			tree.LinkCount(), multicast.UnicastLinkTotal(p, s, dests))
		return nil
	case "reliability":
		if len(args) != 4 {
			return fmt.Errorf("usage: reliability <s> <d> <q>")
		}
		s, d, err := parsePair(p, args[1:3])
		if err != nil {
			return err
		}
		q, err := strconv.ParseFloat(args[3], 64)
		if err != nil {
			return fmt.Errorf("bad probability %q", args[3])
		}
		r, err := analysis.PairReliability(p, s, d, q)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "IADM pair reliability P[path %d → %d survives | link failure prob %.3g] = %.6f\n", s, d, q, r)
		fmt.Fprintf(w, "single-path ICube reference: %.6f\n", analysis.ICubePairReliability(p, q))
		return nil
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// parseSimArgs parses the shared <policy> <load> [replicas] argument
// tail of the simulate and wormhole commands.
func parseSimArgs(args []string) (simulator.Policy, float64, int, error) {
	var pol simulator.Policy
	switch args[1] {
	case "static":
		pol = simulator.StaticC
	case "random":
		pol = simulator.RandomState
	case "adaptive":
		pol = simulator.AdaptiveSSDT
	default:
		return 0, 0, 0, fmt.Errorf("unknown policy %q", args[1])
	}
	load, err := strconv.ParseFloat(args[2], 64)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("bad load %q", args[2])
	}
	replicas := 1
	if len(args) == 4 {
		replicas, err = strconv.Atoi(args[3])
		if err != nil || replicas < 1 {
			return 0, 0, 0, fmt.Errorf("bad replica count %q", args[3])
		}
	}
	return pol, load, replicas, nil
}

func loadScenario(path string) (*scenario.Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return scenario.Parse(f)
}

// loadPacketScenario loads a scenario for a packet-mode consumer, which
// has no meaning for the wormhole-only lanes/depth directives and must
// reject scenarios carrying them.
func loadPacketScenario(path string) (*scenario.Scenario, error) {
	sc, err := loadScenario(path)
	if err != nil {
		return nil, err
	}
	if sc.Wormhole() {
		return nil, fmt.Errorf("scenario %s pins a wormhole operating point (lanes/depth); only the wormhole command accepts it", path)
	}
	return sc, nil
}

func parsePair(p topology.Params, args []string) (int, int, error) {
	if len(args) < 2 {
		return 0, 0, fmt.Errorf("need <s> <d>")
	}
	s, err := strconv.Atoi(args[0])
	if err != nil || !p.ValidSwitch(s) {
		return 0, 0, fmt.Errorf("invalid source %q", args[0])
	}
	d, err := strconv.Atoi(args[1])
	if err != nil || !p.ValidSwitch(d) {
		return 0, 0, fmt.Errorf("invalid destination %q", args[1])
	}
	return s, d, nil
}
