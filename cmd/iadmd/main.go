// Command iadmd is the IADM routing daemon: it serves destination tags
// (SSDT and TSDT/REROUTE, Sections 3–5 of the paper) over HTTP from an
// internal/routesvc service — sharded epoch-stamped tag cache, request
// coalescing, batch routing, fault/repair ingestion, JSON metrics — and
// drains gracefully on SIGTERM/SIGINT.
//
// Usage:
//
//	iadmd [-n N] [-addr host:port] [-shards S] [-portfile F] [-prewarm]
//	      [-max-nets K] [-sweep-every K] [-admission-max Q]
//	      [-admission-min Q] [-admission-round D] [-slow-cost D]
//
// The daemon hosts named networks ("partitions" to a fleet router, see
// cmd/iadmfleet): every request may carry a "net" (JSON field or ?net=
// query); each name is an independent network — own blockage map, own
// epoch, own tag cache — created lazily on first use (up to -max-nets),
// all sized -n. The empty name addresses the built-in "default" network,
// so single-network deployments are unchanged. All networks share ONE
// slow-path admission gate: the gate bounds this process's REROUTE
// compute capacity, which the networks share.
//
// Admission control bounds concurrent fresh TSDT computes (the slow
// path); excess requests answer 429 with Retry-After while cache hits and
// SSDT requests keep flowing. -slow-cost stretches each fresh compute to
// rehearse overload against small test fabrics.
//
// -prewarm bulk-fills the dense per-destination SSDT table (n bits per
// route) through the 64-lane sliced kernels before the listener opens, so
// the very first SSDT request is already a cache hit; POST /prewarm does
// the same at runtime. -sweep-every sets the auto-sweep cadence that
// reclaims stale TSDT cache entries (every K epoch bumps; -1 disables).
//
// Endpoints:
//
//	GET|POST /route        ?src=&dst=&scheme=ssdt|tsdt (or JSON body)
//	POST     /route/batch  {"requests":[{"src":..,"dst":..,"scheme":".."}]}
//	POST     /fault        {"links":["1:2:+"],"switches":["1:3"]}
//	POST     /repair       {"links":["1:2:+"]}
//	POST     /prewarm      rebuild the dense SSDT table now
//	GET      /healthz      liveness and drain state
//	GET      /metrics      JSON cache/latency/epoch metrics
//
// With -addr ending in :0 the kernel picks a free port; -portfile writes
// the bound host:port to a file so scripts (make serve-smoke) can find it.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"iadm/internal/buildinfo"
	"iadm/internal/routesvc"
)

type daemonConfig struct {
	n, shards    int
	addr         string
	portFile     string
	drainTimeout time.Duration

	admissionMax   int
	admissionMin   int
	admissionRound time.Duration
	slowCost       time.Duration

	prewarm    bool
	sweepEvery int
	maxNets    int
}

func main() {
	cfg := daemonConfig{}
	flag.IntVar(&cfg.n, "n", 1024, "network size N (power of two)")
	flag.IntVar(&cfg.shards, "shards", 0, "tag-cache shards, rounded up to a power of two (0 = 64)")
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	flag.StringVar(&cfg.portFile, "portfile", "", "write the bound host:port to this file once listening")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 10*time.Second, "maximum time to wait for in-flight requests on shutdown")
	flag.IntVar(&cfg.admissionMax, "admission-max", 128, "slow-path admission ceiling: max concurrent fresh TSDT computes (0 disables admission control)")
	flag.IntVar(&cfg.admissionMin, "admission-min", 8, "slow-path admission floor the adaptive threshold never sheds below")
	flag.DurationVar(&cfg.admissionRound, "admission-round", 100*time.Millisecond, "admission controller round: how often the threshold adapts")
	flag.DurationVar(&cfg.slowCost, "slow-cost", 0, "artificial per-compute cost added to fresh TSDT computes (overload rehearsal; 0 = off)")
	flag.BoolVar(&cfg.prewarm, "prewarm", false, "bulk-fill the dense SSDT tag table before serving (first request hits the cache)")
	flag.IntVar(&cfg.sweepEvery, "sweep-every", 0, "auto-sweep stale cache entries every K epoch bumps (0 = 256, negative disables)")
	flag.IntVar(&cfg.maxNets, "max-nets", 16, "maximum named networks hosted by this process (lazily created on first use)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version("iadmd"))
		return
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := serve(cfg, os.Stderr, stop, nil); err != nil {
		fmt.Fprintln(os.Stderr, "iadmd:", err)
		os.Exit(1)
	}
}

// serve runs the daemon until stop delivers a signal (or the listener
// fails). ready, when non-nil, receives the bound address once the daemon
// is accepting connections; tests use it in place of the port file.
func serve(cfg daemonConfig, logw io.Writer, stop <-chan os.Signal, ready chan<- string) error {
	multi := routesvc.NewMulti(routesvc.Config{
		N:      cfg.n,
		Shards: cfg.shards,
		Admission: routesvc.AdmissionConfig{
			Disabled: cfg.admissionMax == 0,
			MaxQueue: cfg.admissionMax,
			MinQueue: cfg.admissionMin,
			Round:    cfg.admissionRound,
		},
		SlowCost:   cfg.slowCost,
		Prewarm:    cfg.prewarm,
		SweepEvery: cfg.sweepEvery,
	}, cfg.maxNets)
	// Materialize the default network up front: it validates the config
	// before the listener opens, and with -prewarm the dense SSDT build
	// happens here rather than on the first request.
	svc, err := multi.Get(routesvc.DefaultNet)
	if err != nil {
		return err
	}
	if cfg.prewarm {
		m := svc.Metrics()
		fmt.Fprintf(logw, "iadmd: prewarmed %d SSDT routes (%.1f bits/route)\n", m.DenseRoutes, m.BitsPerRoute)
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	if cfg.portFile != "" {
		if err := writeFileAtomic(cfg.portFile, addr+"\n"); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(logw, "iadmd: serving N=%d (%d-stage tags) on http://%s\n",
		svc.Params().Size(), svc.Params().Stages(), addr)
	if ready != nil {
		ready <- addr
	}

	srv := &http.Server{Handler: routesvc.NewMultiHandler(multi)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Fprintf(logw, "iadmd: %v: draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		defer cancel()
		// Shutdown closes the listener and waits for in-flight handlers;
		// Drain then flips the service state (instant once handlers are
		// done) so the final metrics line reports it.
		shutErr := srv.Shutdown(ctx)
		multi.Drain()
		<-errc // http.ErrServerClosed
		m, _ := multi.Metrics()
		fmt.Fprintf(logw, "iadmd: drained; served %d requests across %d nets (ssdt hit rate %.3f, tsdt hit rate %.3f, epoch %d, shed %d)\n",
			m.Requests, len(multi.Nets()), m.SSDTHitRate, m.TSDTHitRate, m.Epoch, m.Admission.Shed)
		return shutErr
	}
}

// writeFileAtomic writes via a temp file + rename so a polling reader
// never sees a half-written address.
func writeFileAtomic(path, content string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".iadmd-port-*")
	if err != nil {
		return err
	}
	if _, err := tmp.WriteString(content); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
