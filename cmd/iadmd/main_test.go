package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"iadm/internal/routesvc"
)

// TestServeRouteAndDrain boots the daemon on an ephemeral port, routes
// through it, then delivers SIGTERM and checks it drains and exits
// cleanly, portfile intact throughout.
func TestServeRouteAndDrain(t *testing.T) {
	portFile := filepath.Join(t.TempDir(), "port")
	cfg := daemonConfig{
		n:            16,
		addr:         "127.0.0.1:0",
		portFile:     portFile,
		drainTimeout: 5 * time.Second,
	}
	stop := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	var logs strings.Builder
	done := make(chan error, 1)
	go func() { done <- serve(cfg, &logs, stop, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("serve exited early: %v", err)
	}
	written, err := os.ReadFile(portFile)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(written)); got != addr {
		t.Errorf("portfile has %q, listener bound %q", got, addr)
	}

	resp, err := http.Get("http://" + addr + "/route?src=3&dst=9&scheme=ssdt")
	if err != nil {
		t.Fatal(err)
	}
	var route routesvc.RouteJSON
	if err := json.NewDecoder(resp.Body).Decode(&route); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || route.Tag == "" {
		t.Fatalf("route via daemon: status %d, %+v", resp.StatusCode, route)
	}

	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("daemon still accepting connections after drain")
	}
	if !strings.Contains(logs.String(), "drained") {
		t.Errorf("logs missing drain line:\n%s", logs.String())
	}
}

func TestServeRejectsBadConfig(t *testing.T) {
	stop := make(chan os.Signal)
	if err := serve(daemonConfig{n: 6, addr: "127.0.0.1:0"}, io.Discard, stop, nil); err == nil {
		t.Error("accepted N=6")
	}
	if err := serve(daemonConfig{n: 8, addr: "256.0.0.1:bad"}, io.Discard, stop, nil); err == nil {
		t.Error("accepted a bad listen address")
	}
}
