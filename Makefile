# Tier-1 check plus the perf-tracking targets. `make check` is what CI
# runs: formatting, vet, build, the full test suite, the race detector
# with per-cycle invariants armed, and a bounded fuzz smoke over the two
# structure-sensitive fuzz targets.

GO ?= go

# The tracked routing benchmark suite: packed kernels and their preserved
# legacy counterparts side by side (core), the frontier walks (paths), and
# the packed-path consumers (permroute, multicast, analysis). The regex
# fragments deliberately prefix-match their *Packed/*Legacy variants.
ROUTING_PKGS = ./internal/core,./internal/paths,./internal/permroute,./internal/multicast,./internal/analysis
ROUTING_BENCH = BenchmarkFollowState|BenchmarkTagFollow|BenchmarkRouteSSDT|BenchmarkRouteTSDTPacked|BenchmarkRouteSliced|BenchmarkExists|BenchmarkFind|BenchmarkMultiPass|BenchmarkBroadcast|BenchmarkReroutablePairs

# The tracked tag-store suite: bit-packed table lookups in core
# (BenchmarkTagTable*) and the three cache backends side by side in
# routesvc (BenchmarkTagStore{Flat,Map,Dense}), each reporting a
# bits/route footprint column next to the lookup latency.
TAGSTORE_PKGS = ./internal/core,./internal/routesvc
TAGSTORE_BENCH = BenchmarkTagTable|BenchmarkTagStore

# The tracked fleet suite: ring placement (expect 0 allocs/op) and the
# router's proxy cost — single /route and scatter-gather /route/batch
# round trips, direct vs routed, each reporting ns/route.
FLEET_PKGS = ./internal/fleet
FLEET_BENCH = BenchmarkRingOwner|BenchmarkFleet

# The tracked wormhole suite: the flit-level cycle loop (expect 0
# allocs/op steady state) across lane counts, plus the large-N sharded
# stepping path.
WORMHOLE_PKGS = ./internal/wormhole
WORMHOLE_BENCH = BenchmarkWormhole

.PHONY: check fmt vet build test race serve-smoke fleet-smoke bench bench-routing bench-tagstore bench-fleet bench-wormhole bench-json bench-compare fuzz fuzz-smoke

check: fmt vet build test race serve-smoke fleet-smoke fuzz-smoke

# gofmt -l prints unformatted files; fail if any.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The whole tree under the race detector, with the simulator's per-cycle
# invariant checker (conservation, bitset/ring agreement, latency mass)
# defaulted on via the simcheck build tag.
race:
	$(GO) test -race -tags simcheck ./...

# Tracked simulator numbers (steady-state cycle loop and intra-run
# scaling; expect 0 allocs/op).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkCyclesPerSecond|BenchmarkLargeN' -benchmem ./internal/simulator

# One human-readable pass over the tracked routing suite (expect 0
# allocs/op on every packed kernel and frontier walk).
bench-routing:
	$(GO) test -run '^$$' -bench '$(ROUTING_BENCH)' -benchmem $(subst $(comma), ,$(ROUTING_PKGS))

# One human-readable pass over the tag-store suite (expect 0 allocs/op
# everywhere and flat/dense bits/route far below the map baseline).
bench-tagstore:
	$(GO) test -run '^$$' -bench '$(TAGSTORE_BENCH)' -benchmem $(subst $(comma), ,$(TAGSTORE_PKGS))

# One human-readable pass over the fleet suite (ring placement must stay
# 0 allocs/op; Routed vs Direct is the router's proxy cost).
bench-fleet:
	$(GO) test -run '^$$' -bench '$(FLEET_BENCH)' -benchmem $(subst $(comma), ,$(FLEET_PKGS))

# One human-readable pass over the wormhole suite (the flit loop must
# stay 0 allocs/op once warm).
bench-wormhole:
	$(GO) test -run '^$$' -bench '$(WORMHOLE_BENCH)' -benchmem $(subst $(comma), ,$(WORMHOLE_PKGS))

comma := ,

# Emit BENCH_simulator.json, BENCH_routing.json and BENCH_tagstore.json
# for CI tracking.
bench-json:
	$(GO) run ./cmd/benchjson
	$(GO) run ./cmd/benchjson -pkg '$(ROUTING_PKGS)' -bench '$(ROUTING_BENCH)' -o BENCH_routing.json
	$(GO) run ./cmd/benchjson -pkg '$(TAGSTORE_PKGS)' -bench '$(TAGSTORE_BENCH)' -o BENCH_tagstore.json
	$(GO) run ./cmd/benchjson -pkg '$(FLEET_PKGS)' -bench '$(FLEET_BENCH)' -o BENCH_fleet.json
	$(GO) run ./cmd/benchjson -pkg '$(WORMHOLE_PKGS)' -bench '$(WORMHOLE_BENCH)' -o BENCH_wormhole.json

# Perf gate: rerun the tracked benchmarks and fail if mean_ns_per_op
# regressed against the committed BENCH_simulator.json. benchjson's
# default tolerance is 10%; the single-core reference container is
# looser (-tolerance 0.25) because the sharded BenchmarkLargeN cells
# spin-wait at phase barriers, which amplifies host throttling into
# ±15-20% run-to-run noise there — on a dedicated multi-core perf
# host, drop the flag to gate at the 10% default. The fresh report
# goes to /dev/null so the committed baseline is only ever replaced
# deliberately (via bench-json).
bench-compare:
	$(GO) run ./cmd/benchjson -count 5 -o /dev/null -tolerance 0.25 -compare BENCH_simulator.json
	$(GO) run ./cmd/benchjson -count 5 -o /dev/null -tolerance 0.25 \
		-pkg '$(ROUTING_PKGS)' -bench '$(ROUTING_BENCH)' -compare BENCH_routing.json
	$(GO) run ./cmd/benchjson -count 5 -o /dev/null -tolerance 0.25 \
		-pkg '$(TAGSTORE_PKGS)' -bench '$(TAGSTORE_BENCH)' -compare BENCH_tagstore.json
	$(GO) run ./cmd/benchjson -count 5 -o /dev/null -tolerance 0.25 \
		-pkg '$(FLEET_PKGS)' -bench '$(FLEET_BENCH)' -compare BENCH_fleet.json
	$(GO) run ./cmd/benchjson -count 5 -o /dev/null -tolerance 0.25 \
		-pkg '$(WORMHOLE_PKGS)' -bench '$(WORMHOLE_BENCH)' -compare BENCH_wormhole.json

# End-to-end smoke of the serving stack: boot iadmd (N=1024) on an
# ephemeral port, drive iadmload through a singles phase and a
# batch-heavy phase (mixed /route/batch sizes exercising the sliced
# kernel fill, including non-multiples of 64), enforce zero request
# errors / zero 5xx / SSDT hit rate >= 90% / sliced lanes used, then
# SIGTERM and require a clean drain. A third phase floods a second daemon
# (tiny admission bound + artificial slow-path cost) at several times
# slow-path saturation and requires sheds observed, zero 5xx, continued
# successes, and a bounded client p99 (`iadmload -overload -check`). A
# fourth phase boots `iadmd -prewarm` and requires a >= 99% SSDT hit
# rate on pure-SSDT load starting from the very first request.
serve-smoke:
	GO='$(GO)' sh scripts/serve_smoke.sh

# End-to-end smoke of the fleet layer: a capacity phase requiring a
# 3-backend fleet to push >= 2x the success throughput of one
# identically-tuned slow-path-bound daemon, a latency phase requiring
# the router to add < 15% p50 overhead against real slow-path work, and
# a mixed phase serving 4 partitions of batch-heavy traffic while
# fault/repair churn stays confined to partition p0 (zero 5xx, merged
# SSDT hit rate >= 90%, every other partition's epoch untouched), ending
# in a clean drain of the router and then every backend.
fleet-smoke:
	GO='$(GO)' sh scripts/fleet_smoke.sh

fuzz:
	$(GO) test -run FuzzRingQueue -fuzz FuzzRingQueue -fuzztime 30s ./internal/simulator

# Bounded fuzz pass for CI: the ring-buffer model check, the
# optimized-vs-reference differential oracles (packet and wormhole
# modes), the packed-path round-trip/accessor-parity check, the
# sliced-vs-packed kernel parity oracle, and the
# tag-table-vs-scalar-kernel round-trip oracle, 10s each.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzRingQueue -fuzztime 10s ./internal/simulator
	$(GO) test -run '^$$' -fuzz FuzzDifferential -fuzztime 10s ./internal/refsim
	$(GO) test -run '^$$' -fuzz FuzzWormholeDifferential -fuzztime 10s ./internal/refwh
	$(GO) test -run '^$$' -fuzz FuzzPackedRoundTrip -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzSlicedParity -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzTagTable -fuzztime 10s ./internal/core
