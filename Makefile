# Tier-1 check plus the perf-tracking targets. `make check` is what CI
# runs: formatting, vet, build and the full test suite.

GO ?= go

.PHONY: check fmt vet build test race bench bench-json fuzz

check: fmt vet build test

# gofmt -l prints unformatted files; fail if any.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The simulator worker pool and RunMany fan-out under the race detector.
race:
	$(GO) test -race ./internal/simulator

# Tracked simulator numbers (steady-state cycle loop; expect 0 allocs/op).
bench:
	$(GO) test -run '^$$' -bench BenchmarkCyclesPerSecond -benchmem ./internal/simulator

# Emit BENCH_simulator.json for CI tracking.
bench-json:
	$(GO) run ./cmd/benchjson

fuzz:
	$(GO) test -run FuzzRingQueue -fuzz FuzzRingQueue -fuzztime 30s ./internal/simulator
